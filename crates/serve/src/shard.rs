//! The sharded wave batcher: N independent threads, each owning one
//! [`StreamPool`] shard *per registry model*, together serving thousands
//! of streams across a whole model zoo.
//!
//! A stream is pinned to its shard at OPEN time by a stable hash of
//! `(connection, stream id)` — the edge routes every later PUSH/CLOSE for
//! that stream to the same shard, so a shard's pools and stream tables are
//! single-threaded and lock-free exactly like the old one-batcher design,
//! just `shards`-times over. One generic implementation serves both
//! precisions through `Box<dyn StreamPool>` (this file replaced 24
//! hand-written `F32`/`I8` match arms). Multi-model serving keeps the
//! layout: the shard holds one pool per model (same index order as the
//! edge registry), the edge resolves a stream's model at OPEN, and a wave
//! flushes every pool with pending timesteps — each model still batches
//! its own streams into single GEMMs.
//!
//! Shards never touch a socket: replies are encoded into the connection's
//! [`OutBuf`] and the edge is woken through the self-pipe [`Waker`] to
//! drain them. The little cross-thread state a shard shares is explicit:
//! the per-connection pending-timestep counter (backpressure, edge
//! increments / shard decrements), the per-connection v2 latch (EMIT vs
//! EMIT_N formatting), its [`ShardStats`] block, the per-model
//! [`ModelStats`] blocks shared by every shard, and a note channel back to
//! the edge so idle evictions release the server-wide stream budget.

#[cfg(feature = "chaos")]
use crate::chaos::FaultInjector;
use crate::edge::{OutBuf, Waker};
use crate::protocol::{encode_server, CloseReason, ErrorCode, ServerFrame, MAX_FRAME_BODY};
use crate::server::{ConnId, ServeEngine};
use crate::stats::{ModelStats, ShardStats};
use crate::telemetry::{Telemetry, TraceKind};
use pit_infer::StreamPool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the edge routes to a shard.
pub(crate) enum ShardEvent {
    /// A connection exists (broadcast to every shard on accept): the
    /// handles a shard needs to reply to it and account for it.
    Connected {
        conn: ConnId,
        out: Arc<OutBuf>,
        pending: Arc<AtomicUsize>,
        v2: Arc<AtomicBool>,
    },
    /// The connection is gone (broadcast): close its streams on this shard.
    Disconnected { conn: ConnId },
    /// OPEN, pre-validated by the edge (duplicate + capacity checks, and
    /// `model` resolved against the registry). `gen` is the edge's open
    /// generation, echoed back in eviction notes so the edge can tell an
    /// eviction of *this* incarnation of the stream id from a later one.
    Open {
        conn: ConnId,
        stream_id: u32,
        model: usize,
        gen: u64,
    },
    /// CLOSE, pre-validated by the edge (the stream was open there).
    Close { conn: ConnId, stream_id: u32 },
    /// `count` timesteps for one stream (a v1 PUSH, or one entry of a v2
    /// PUSH_N). The edge already validated channels and charged `count`
    /// to the connection's pending counter.
    Push {
        conn: ConnId,
        stream_id: u32,
        count: usize,
        samples: Vec<f32>,
    },
    /// Register one more model (broadcast): the shard appends a fresh pool
    /// at the next registry index, mirroring the edge's table.
    AddModel {
        engine: ServeEngine,
        stats: Arc<ModelStats>,
    },
    /// Atomically replace model `model`'s engine (broadcast; only sent
    /// while that model has zero open streams).
    Swap { model: usize, engine: ServeEngine },
}

/// Trace-event close code for streams torn down by a disconnect — the
/// wire [`CloseReason`]s stop at 2 because no CLOSED frame is sent to a
/// connection that is already gone.
const CLOSE_DISCONNECTED: u64 = 3;

/// What a shard reports back to the edge (processed on each wakeup).
pub(crate) enum ShardNote {
    /// A stream ended shard-side (idle eviction): the edge must release
    /// its slot in the server-wide stream budget. `gen` names the open
    /// generation that was evicted — the edge ignores the note when the
    /// id has since been closed and reopened under a newer generation.
    StreamClosed {
        conn: ConnId,
        stream_id: u32,
        gen: u64,
    },
}

struct ShardConn {
    out: Arc<OutBuf>,
    /// Connection-wide queued-timestep counter (shared with the edge,
    /// which enforces the backpressure cap against it before forwarding).
    pending: Arc<AtomicUsize>,
    /// Latched once the connection sends a PUSH_N: emissions coalesce into
    /// EMIT_N frames.
    v2: Arc<AtomicBool>,
    /// Connection-scoped stream id → `(model, pool slot)` on this shard.
    streams: HashMap<u32, (usize, usize)>,
    /// Timesteps this shard queued for the connection since the last wave
    /// (this shard's share of `pending`).
    queued: usize,
}

struct StreamInfo {
    conn: ConnId,
    client_id: u32,
    /// The edge's open generation, echoed in eviction notes.
    gen: u64,
    last_activity: Instant,
}

pub(crate) struct Shard {
    /// This shard's index in the edge's shard table (trace-event label).
    index: usize,
    /// One pool per registry model, same index order as the edge's table.
    pools: Vec<Box<dyn StreamPool>>,
    /// Per-model counter blocks, shared with every other shard.
    model_stats: Vec<Arc<ModelStats>>,
    tick: Duration,
    idle_timeout: Option<Duration>,
    conns: HashMap<ConnId, ShardConn>,
    /// `(model, pool slot)` → owner.
    streams: HashMap<(usize, usize), StreamInfo>,
    stats: Arc<ShardStats>,
    telemetry: Arc<Telemetry>,
    notes: Sender<ShardNote>,
    waker: Waker,
    /// Set when this iteration queued reply bytes: ring the edge once per
    /// iteration, not once per frame.
    wrote: bool,
    /// Chaos fault seam (wakeup delays, wave stalls); `None` injects
    /// nothing.
    #[cfg(feature = "chaos")]
    faults: Option<Arc<FaultInjector>>,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        models: &[(ServeEngine, Arc<ModelStats>)],
        tick: Duration,
        idle_timeout: Option<Duration>,
        stats: Arc<ShardStats>,
        telemetry: Arc<Telemetry>,
        notes: Sender<ShardNote>,
        waker: Waker,
    ) -> Self {
        Self {
            index,
            pools: models.iter().map(|(e, _)| e.new_pool()).collect(),
            model_stats: models.iter().map(|(_, s)| Arc::clone(s)).collect(),
            tick,
            idle_timeout,
            conns: HashMap::new(),
            streams: HashMap::new(),
            stats,
            telemetry,
            notes,
            waker,
            wrote: false,
            #[cfg(feature = "chaos")]
            faults: None,
        }
    }

    /// Installs the chaos fault seam (builder-style, used by the server
    /// when [`crate::ServerConfig::faults`] is set).
    #[cfg(feature = "chaos")]
    pub(crate) fn with_faults(mut self, faults: Option<Arc<FaultInjector>>) -> Self {
        self.faults = faults;
        self
    }

    /// Records one per-stream event in the global trace ring.
    fn trace(&self, kind: TraceKind, conn: ConnId, stream: u32, model: usize, count: u64) {
        self.telemetry.trace.record(
            kind,
            conn,
            Some(stream),
            Some(self.index),
            Some(model),
            count,
            self.telemetry.now_us(),
        );
    }

    fn send(&mut self, conn: ConnId, frame: &ServerFrame) {
        if let Some(state) = self.conns.get(&conn) {
            state.out.push(encode_server(frame));
            self.wrote = true;
        }
    }

    fn send_error(&mut self, conn: ConnId, code: ErrorCode, message: impl Into<String>) {
        self.stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
        self.telemetry.trace.record(
            TraceKind::Error,
            conn,
            None,
            Some(self.index),
            None,
            code as u64,
            self.telemetry.now_us(),
        );
        self.send(
            conn,
            &ServerFrame::Error {
                code,
                message: message.into(),
            },
        );
    }

    fn handle(&mut self, event: ShardEvent) {
        match event {
            ShardEvent::Connected {
                conn,
                out,
                pending,
                v2,
            } => {
                self.conns.insert(
                    conn,
                    ShardConn {
                        out,
                        pending,
                        v2,
                        streams: HashMap::new(),
                        queued: 0,
                    },
                );
            }
            ShardEvent::Disconnected { conn } => {
                if let Some(state) = self.conns.remove(&conn) {
                    state.pending.fetch_sub(state.queued, Ordering::Relaxed);
                    for (stream_id, (model, slot)) in state.streams {
                        self.pools[model].close_stream(slot);
                        self.streams.remove(&(model, slot));
                        self.trace(TraceKind::Close, conn, stream_id, model, CLOSE_DISCONNECTED);
                    }
                    self.stats
                        .streams_open
                        .store(self.streams.len() as u64, Ordering::Relaxed);
                }
            }
            ShardEvent::Open {
                conn,
                stream_id,
                model,
                gen,
            } => self.handle_open(conn, stream_id, model, gen),
            ShardEvent::Close { conn, stream_id } => self.handle_close(conn, stream_id),
            ShardEvent::Push {
                conn,
                stream_id,
                count,
                samples,
            } => self.handle_push(conn, stream_id, count, &samples),
            ShardEvent::AddModel { engine, stats } => {
                self.pools.push(engine.new_pool());
                self.model_stats.push(stats);
            }
            ShardEvent::Swap { model, engine } => {
                // Only broadcast while the named model has zero open
                // streams server-wide; a shard with live streams of it (an
                // impossible race would be an edge bug) keeps its pool
                // rather than corrupting them.
                if self.streams.keys().all(|&(m, _)| m != model) {
                    self.pools[model] = engine.new_pool();
                }
            }
        }
    }

    fn handle_open(&mut self, conn: ConnId, stream_id: u32, model: usize, gen: u64) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        let slot = self.pools[model].open_stream();
        state.streams.insert(stream_id, (model, slot));
        self.streams.insert(
            (model, slot),
            StreamInfo {
                conn,
                client_id: stream_id,
                gen,
                last_activity: Instant::now(),
            },
        );
        self.stats.streams_opened.fetch_add(1, Ordering::Relaxed);
        self.model_stats[model]
            .streams_opened
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .streams_open
            .store(self.streams.len() as u64, Ordering::Relaxed);
        self.trace(TraceKind::Open, conn, stream_id, model, 0);
        self.send(conn, &ServerFrame::Opened { stream_id });
    }

    fn handle_close(&mut self, conn: ConnId, stream_id: u32) {
        let Some((model, slot)) = self
            .conns
            .get_mut(&conn)
            .and_then(|c| c.streams.remove(&stream_id))
        else {
            // The edge validated liveness against its own table, but an
            // idle eviction can race the CLOSE: the stream is simply gone.
            self.send_error(
                conn,
                ErrorCode::UnknownStream,
                format!("stream {stream_id} is not open"),
            );
            return;
        };
        // CLOSE is an orderly end, not an abort: timesteps the stream
        // already pushed must become final emissions, not vanish depending
        // on where the tick happened to land.
        if self.pools[model].pending_for(slot) > 0 {
            self.run_wave();
        }
        self.pools[model].close_stream(slot);
        self.streams.remove(&(model, slot));
        self.stats
            .streams_open
            .store(self.streams.len() as u64, Ordering::Relaxed);
        self.trace(
            TraceKind::Close,
            conn,
            stream_id,
            model,
            CloseReason::ByClient as u64,
        );
        self.send(
            conn,
            &ServerFrame::Closed {
                stream_id,
                reason: CloseReason::ByClient,
            },
        );
    }

    fn handle_push(&mut self, conn: ConnId, stream_id: u32, count: usize, samples: &[f32]) {
        let Some(&(model, slot)) = self
            .conns
            .get(&conn)
            .and_then(|c| c.streams.get(&stream_id))
        else {
            // Evicted (or closed) between the edge's check and now: refund
            // the pending charge the edge made and tell the client.
            if let Some(state) = self.conns.get(&conn) {
                state.pending.fetch_sub(count, Ordering::Relaxed);
            }
            self.send_error(
                conn,
                ErrorCode::UnknownStream,
                format!("stream {stream_id} is not open"),
            );
            return;
        };
        let c_in = self.pools[model].input_channels();
        for sample in samples.chunks_exact(c_in) {
            self.pools[model].push(slot, sample);
        }
        if let Some(state) = self.conns.get_mut(&conn) {
            state.queued += count;
        }
        self.stats
            .timesteps_in
            .fetch_add(count as u64, Ordering::Relaxed);
        self.model_stats[model]
            .timesteps_in
            .fetch_add(count as u64, Ordering::Relaxed);
        self.trace(TraceKind::Push, conn, stream_id, model, count as u64);
        if let Some(info) = self.streams.get_mut(&(model, slot)) {
            info.last_activity = Instant::now();
        }
    }

    /// One batched wave: flush every model pool with queued timesteps (one
    /// GEMM per layer per model per wave) and route emissions back —
    /// per-stream EMIT frames for v1 connections, one coalesced EMIT_N per
    /// connection per model for v2.
    fn run_wave(&mut self) {
        // Chaos: stall the flush to widen the window in which closes,
        // disconnects and evictions land on streams mid-wave.
        #[cfg(feature = "chaos")]
        if let Some(faults) = &self.faults {
            faults.wave_stall();
        }
        // One pass over the stream map for every model's occupancy —
        // rescanning per registry entry would cost O(models × streams)
        // each tick.
        let mut per_model = vec![0usize; self.pools.len()];
        for &(model, slot) in self.streams.keys() {
            if self.pools[model].pending_for(slot) > 0 {
                per_model[model] += 1;
            }
        }
        let mut flushed = false;
        for (model, occupancy) in per_model.into_iter().enumerate() {
            if occupancy == 0 {
                continue;
            }
            let t0 = Instant::now();
            let results = self.pools[model].flush();
            let elapsed = t0.elapsed();
            self.stats.record_wave(occupancy, elapsed);
            self.model_stats[model].record_wave(occupancy, elapsed);
            flushed = true;
            self.route_emissions(model, results);
        }
        if !flushed {
            return;
        }
        // The flushes drained every queue on this shard: refund each
        // connection's share of its pending counter.
        for state in self.conns.values_mut() {
            if state.queued > 0 {
                state.pending.fetch_sub(state.queued, Ordering::Relaxed);
                state.queued = 0;
            }
        }
    }

    /// Routes one model's flush results to their connections.
    fn route_emissions(&mut self, model: usize, results: Vec<(usize, Vec<f32>)>) {
        if results.is_empty() {
            return;
        }
        // Coalesce each stream's chronological emissions.
        let dim = self.pools[model].output_dim().max(1);
        let mut per_stream: HashMap<usize, Vec<f32>> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        for (slot, out) in results {
            let entry = per_stream.entry(slot).or_insert_with(|| {
                order.push(slot);
                Vec::new()
            });
            entry.extend_from_slice(&out);
        }
        // Frames must stay under the protocol's body bound: cap the vectors
        // per frame and split a backlog across frames (order preserved).
        let max_vectors_per_frame = ((MAX_FRAME_BODY - 64) / (4 * dim)).max(1);
        let mut emit_n: HashMap<ConnId, EmitNBuilder> = HashMap::new();
        let mut conn_order: Vec<ConnId> = Vec::new();
        for slot in order {
            let outputs = per_stream.remove(&slot).expect("grouped above");
            let emitted = (outputs.len() / dim) as u64;
            self.stats
                .emissions_out
                .fetch_add(emitted, Ordering::Relaxed);
            self.model_stats[model]
                .emissions_out
                .fetch_add(emitted, Ordering::Relaxed);
            let Some(info) = self.streams.get(&(model, slot)) else {
                continue;
            };
            let (conn, stream_id) = (info.conn, info.client_id);
            self.trace(TraceKind::Emit, conn, stream_id, model, emitted);
            let v2 = self
                .conns
                .get(&conn)
                .map(|c| c.v2.load(Ordering::Relaxed))
                .unwrap_or(false);
            if v2 {
                let builder = emit_n.entry(conn).or_insert_with(|| {
                    conn_order.push(conn);
                    EmitNBuilder::new(dim)
                });
                for chunk in outputs.chunks(max_vectors_per_frame * dim) {
                    if let Some(full) = builder.add(stream_id, chunk) {
                        self.send(conn, &full);
                    }
                }
            } else {
                for chunk in outputs.chunks(max_vectors_per_frame * dim) {
                    self.send(
                        conn,
                        &ServerFrame::Emit {
                            stream_id,
                            count: (chunk.len() / dim) as u32,
                            dim: dim as u32,
                            outputs: chunk.to_vec(),
                        },
                    );
                }
            }
        }
        for conn in conn_order {
            if let Some(frame) = emit_n.remove(&conn).expect("built above").finish() {
                self.send(conn, &frame);
            }
        }
    }

    fn evict_idle(&mut self) {
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let stale: Vec<(usize, usize)> = self
            .streams
            .iter()
            .filter(|(_, info)| now.duration_since(info.last_activity) > timeout)
            .map(|(&key, _)| key)
            .collect();
        for (model, slot) in stale {
            let Some(info) = self.streams.remove(&(model, slot)) else {
                continue;
            };
            let dropped = self.pools[model].pending_for(slot);
            self.pools[model].close_stream(slot);
            if let Some(state) = self.conns.get_mut(&info.conn) {
                state.streams.remove(&info.client_id);
                state.queued = state.queued.saturating_sub(dropped);
                state.pending.fetch_sub(dropped, Ordering::Relaxed);
            }
            self.stats.streams_evicted.fetch_add(1, Ordering::Relaxed);
            self.stats
                .streams_open
                .store(self.streams.len() as u64, Ordering::Relaxed);
            self.trace(
                TraceKind::Evict,
                info.conn,
                info.client_id,
                model,
                dropped as u64,
            );
            // Release the edge's stream budget before the client learns —
            // a reopen after CLOSED must find the slot free.
            let _ = self.notes.send(ShardNote::StreamClosed {
                conn: info.conn,
                stream_id: info.client_id,
                gen: info.gen,
            });
            self.send(
                info.conn,
                &ServerFrame::Closed {
                    stream_id: info.client_id,
                    reason: CloseReason::IdleEvicted,
                },
            );
        }
    }

    /// Timesteps queued across every model pool on this shard.
    fn pending_steps(&self) -> usize {
        self.pools.iter().map(|p| p.pending_steps()).sum()
    }

    /// Graceful drain: flush whatever is queued, deliver the final
    /// emissions, and tell every stream it is over.
    fn drain(&mut self) {
        if self.pending_steps() > 0 {
            self.run_wave();
        }
        let open: Vec<(usize, usize)> = self.streams.keys().copied().collect();
        for (model, slot) in open {
            let Some(info) = self.streams.remove(&(model, slot)) else {
                continue;
            };
            self.pools[model].close_stream(slot);
            if let Some(state) = self.conns.get_mut(&info.conn) {
                state.streams.remove(&info.client_id);
            }
            self.trace(
                TraceKind::Close,
                info.conn,
                info.client_id,
                model,
                CloseReason::Drained as u64,
            );
            self.send(
                info.conn,
                &ServerFrame::Closed {
                    stream_id: info.client_id,
                    reason: CloseReason::Drained,
                },
            );
        }
        self.stats.streams_open.store(0, Ordering::Relaxed);
    }

    /// The shard thread: collect routed events, run at most one wave per
    /// tick, evict idle streams, and drain when the edge closes the
    /// channel.
    pub(crate) fn run(mut self, rx: Receiver<ShardEvent>) {
        let mut next_wave = Instant::now();
        loop {
            let timeout = if self.pending_steps() > 0 {
                next_wave.saturating_duration_since(Instant::now())
            } else {
                // Idle: wake occasionally for eviction checks.
                Duration::from_millis(5)
            };
            let mut disconnected = false;
            // Events fully handled this iteration — balanced against the
            // `inflight` charges the edge made when routing them.
            let mut handled = 0u64;
            match rx.recv_timeout(timeout) {
                Ok(event) => {
                    // Chaos: sleep between receiving and handling, so the
                    // edge's view and this shard's view stay divergent for
                    // longer than any natural schedule would allow.
                    #[cfg(feature = "chaos")]
                    if let Some(faults) = &self.faults {
                        faults.shard_wakeup();
                    }
                    self.handle(event);
                    handled += 1;
                    while let Ok(event) = rx.try_recv() {
                        self.handle(event);
                        handled += 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
            if disconnected {
                // The edge dropped the senders after its final read sweep:
                // everything routed is already handled (the channel delivers
                // buffered events before reporting disconnect).
                self.drain();
                self.stats.queued_steps.store(0, Ordering::Release);
                self.stats.ticks.fetch_add(1, Ordering::Release);
                break;
            }
            if self.pending_steps() > 0 && Instant::now() >= next_wave {
                self.run_wave();
                next_wave = Instant::now() + self.tick;
            }
            self.evict_idle();
            // Settling order matters: publish the pool backlog first, then
            // release the inflight charges. A snapshot that observes
            // `inflight == 0` (Acquire) therefore also observes the queued
            // backlog these events created — it can never read 0/0 while a
            // wave is still owed. Both stores are Release so a settled
            // observation implies every counter update above is visible.
            self.stats
                .queued_steps
                .store(self.pending_steps() as u64, Ordering::Release);
            if handled > 0 {
                self.stats.inflight.fetch_sub(handled, Ordering::Release);
            }
            self.stats.ticks.fetch_add(1, Ordering::Release);
            if self.wrote {
                self.wrote = false;
                self.waker.wake();
            }
        }
        // Final emissions and CLOSED frames are in the outbufs; the edge is
        // joining us and flushes them once we are gone.
        self.waker.wake();
    }
}

/// Accumulates one wave's emissions for one v2 connection into EMIT_N
/// frames, splitting when a frame would exceed the protocol body bound.
struct EmitNBuilder {
    dim: usize,
    entries: Vec<(u32, u32)>,
    outputs: Vec<f32>,
}

impl EmitNBuilder {
    fn new(dim: usize) -> Self {
        Self {
            dim,
            entries: Vec::new(),
            outputs: Vec::new(),
        }
    }

    fn frame_bytes(entries: usize, values: usize) -> usize {
        // opcode + dim + entry count + entries + payload.
        1 + 4 + 4 + entries * 8 + values * 4
    }

    /// Adds one stream's chunk of output values; returns a finished frame
    /// first when adding would overflow the body bound.
    fn add(&mut self, stream_id: u32, values: &[f32]) -> Option<ServerFrame> {
        let flushed = if !self.entries.is_empty()
            && Self::frame_bytes(self.entries.len() + 1, self.outputs.len() + values.len())
                > MAX_FRAME_BODY
        {
            self.finish()
        } else {
            None
        };
        self.entries
            .push((stream_id, (values.len() / self.dim) as u32));
        self.outputs.extend_from_slice(values);
        flushed
    }

    /// The accumulated frame, if any emissions are pending.
    fn finish(&mut self) -> Option<ServerFrame> {
        if self.entries.is_empty() {
            return None;
        }
        Some(ServerFrame::EmitN {
            dim: self.dim as u32,
            entries: std::mem::take(&mut self.entries),
            outputs: std::mem::take(&mut self.outputs),
        })
    }
}
