//! Regression tests for the stream lifecycle of `SessionPool` /
//! `QuantizedSessionPool`: closing one finished stream must not disturb the
//! others or require draining the whole pool, closed slots must be recycled
//! with fresh state, and pools must grow past their initial capacity.
//!
//! This is the seam the `pit-serve` daemon's eviction and drain paths stand
//! on.

use pit_infer::{
    compile_temponet, InferencePlan, QuantizedPlan, QuantizedSession, QuantizedSessionPool,
    Session, SessionPool,
};
use pit_models::{TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn searched_plan(seed: u64) -> InferencePlan {
    let cfg = TempoNetConfig::scaled(8, 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    compile_temponet(&net)
}

fn quantized_plan(seed: u64) -> QuantizedPlan {
    let plan = searched_plan(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let x = init::uniform(&mut rng, &[1, 4, 64], 1.0);
    QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).unwrap()
}

fn random_stream(rng: &mut StdRng, steps: usize, c: usize) -> Vec<f32> {
    (0..steps * c).map(|_| rng.gen::<f32>() - 0.5).collect()
}

/// Drives three streams, closes the middle one partway, keeps streaming the
/// others, then recycles the freed slot for a brand-new stream. Generic over
/// the two engines via closures so f32 and i8 run the identical scenario.
struct Harness<Pool> {
    pool: Pool,
    push: fn(&mut Pool, usize, &[f32]),
    #[allow(clippy::type_complexity)]
    flush: fn(&mut Pool) -> Vec<(usize, Vec<f32>)>,
    close: fn(&mut Pool, usize),
    open: fn(&mut Pool) -> usize,
    open_count: fn(&Pool) -> usize,
}

fn close_midway_scenario<Pool>(
    mut h: Harness<Pool>,
    mut solo: impl FnMut(&[f32]) -> Vec<Vec<f32>>,
) {
    const C: usize = 4;
    const STEPS: usize = 48;
    const CLOSE_AT: usize = 17; // not a pool-emission boundary on purpose
    let mut rng = StdRng::seed_from_u64(99);
    let streams: Vec<Vec<f32>> = (0..3).map(|_| random_stream(&mut rng, STEPS, C)).collect();
    let late = random_stream(&mut rng, STEPS, C);

    let mut outputs: Vec<Vec<Vec<f32>>> = vec![Vec::new(); 3];
    let mut late_outputs: Vec<Vec<f32>> = Vec::new();
    let mut late_sid = usize::MAX;
    for t in 0..STEPS {
        if t == CLOSE_AT {
            (h.close)(&mut h.pool, 1);
            assert_eq!((h.open_count)(&h.pool), 2);
            // The freed slot comes back with fresh zero state.
            late_sid = (h.open)(&mut h.pool);
            assert_eq!(late_sid, 1, "closed slot must be recycled");
            assert_eq!((h.open_count)(&h.pool), 3);
        }
        for (sid, stream) in streams.iter().enumerate() {
            if sid == 1 && t >= CLOSE_AT {
                continue;
            }
            (h.push)(&mut h.pool, sid, &stream[t * C..(t + 1) * C]);
        }
        if t >= CLOSE_AT {
            let tt = t - CLOSE_AT;
            (h.push)(&mut h.pool, late_sid, &late[tt * C..(tt + 1) * C]);
        }
        for (sid, out) in (h.flush)(&mut h.pool) {
            if sid == late_sid && t >= CLOSE_AT {
                late_outputs.push(out);
            } else {
                outputs[sid].push(out);
            }
        }
    }

    // Survivors must match solo sessions over the full input; the closed
    // stream must match a solo run of its prefix; the recycled slot must
    // match a solo run of the late stream from zero state.
    let checks: [(&[f32], &[Vec<f32>]); 4] = [
        (&streams[0], &outputs[0]),
        (&streams[1][..CLOSE_AT * C], &outputs[1]),
        (&streams[2], &outputs[2]),
        (&late[..(STEPS - CLOSE_AT) * C], &late_outputs),
    ];
    for (i, (input, got)) in checks.iter().enumerate() {
        let want = solo(input);
        assert_eq!(want.len(), got.len(), "stream {i} emission count");
        for (a, b) in want.iter().zip(got.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5, "stream {i}: {x} vs {y}");
            }
        }
    }
}

#[test]
fn f32_close_stream_leaves_other_streams_untouched() {
    let plan = Arc::new(searched_plan(60));
    let solo_plan = Arc::clone(&plan);
    close_midway_scenario(
        Harness {
            pool: SessionPool::new(plan, 3),
            push: SessionPool::push,
            flush: |p| p.flush(),
            close: SessionPool::close_stream,
            open: |p| p.open_stream(),
            open_count: SessionPool::open_streams,
        },
        move |input| {
            let mut session = Session::new(Arc::clone(&solo_plan));
            input
                .chunks(4)
                .filter_map(|sample| session.push(sample))
                .collect()
        },
    );
}

#[test]
fn i8_close_stream_leaves_other_streams_untouched() {
    let plan = Arc::new(quantized_plan(61));
    let solo_plan = Arc::clone(&plan);
    close_midway_scenario(
        Harness {
            pool: QuantizedSessionPool::new(plan, 3),
            push: QuantizedSessionPool::push,
            flush: |p| p.flush(),
            close: QuantizedSessionPool::close_stream,
            open: |p| p.open_stream(),
            open_count: QuantizedSessionPool::open_streams,
        },
        move |input| {
            let mut session = QuantizedSession::new(Arc::clone(&solo_plan));
            input
                .chunks(4)
                .filter_map(|sample| session.push(sample))
                .collect()
        },
    );
}

#[test]
fn i8_pool_emissions_stay_bit_exact_across_close() {
    // Sharper than the 1e-5 harness check: the i8 pool is bit-exact vs solo.
    let plan = Arc::new(quantized_plan(62));
    let mut pool = QuantizedSessionPool::new(Arc::clone(&plan), 2);
    let mut rng = StdRng::seed_from_u64(63);
    let a = random_stream(&mut rng, 24, 4);
    let b = random_stream(&mut rng, 24, 4);
    pool.close_stream(0); // stream 1 keeps running alone
    let mut got = Vec::new();
    for t in 0..24 {
        pool.push(1, &b[t * 4..(t + 1) * 4]);
        got.extend(pool.flush().into_iter().map(|(_, out)| out));
    }
    let _ = a;
    let mut solo = QuantizedSession::new(plan);
    let want: Vec<_> = b.chunks(4).filter_map(|s| solo.push(s)).collect();
    assert_eq!(got, want, "i8 pool must stay bit-exact after a close");
}

#[test]
fn pools_grow_past_their_initial_capacity() {
    let plan = Arc::new(searched_plan(64));
    let mut pool = SessionPool::new(Arc::clone(&plan), 0);
    assert_eq!(pool.open_streams(), 0);
    let sids: Vec<usize> = (0..5).map(|_| pool.open_stream()).collect();
    assert_eq!(sids, vec![0, 1, 2, 3, 4]);
    let mut rng = StdRng::seed_from_u64(65);
    let streams: Vec<Vec<f32>> = (0..5).map(|_| random_stream(&mut rng, 16, 4)).collect();
    let mut outputs: Vec<Vec<Vec<f32>>> = vec![Vec::new(); 5];
    for t in 0..16 {
        for (sid, s) in streams.iter().enumerate() {
            pool.push(sid, &s[t * 4..(t + 1) * 4]);
        }
        for (sid, out) in pool.flush() {
            outputs[sid].push(out);
        }
    }
    for (sid, stream) in streams.iter().enumerate() {
        let mut session = Session::new(Arc::clone(&plan));
        let want: Vec<_> = stream.chunks(4).filter_map(|s| session.push(s)).collect();
        assert_eq!(outputs[sid].len(), want.len());
        for (a, b) in want.iter().zip(outputs[sid].iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5, "grown stream {sid}");
            }
        }
    }
}

#[test]
#[should_panic(expected = "not open")]
fn pushing_to_a_closed_stream_panics() {
    let plan = Arc::new(searched_plan(66));
    let mut pool = SessionPool::new(plan, 1);
    pool.close_stream(0);
    pool.push(0, &[0.0; 4]);
}

#[test]
#[should_panic(expected = "not open")]
fn double_close_panics() {
    let plan = Arc::new(quantized_plan(67));
    let mut pool = QuantizedSessionPool::new(plan, 1);
    pool.close_stream(0);
    pool.close_stream(0);
}

#[test]
fn pending_for_tracks_per_stream_queues() {
    let plan = Arc::new(searched_plan(68));
    let mut pool = SessionPool::new(plan, 2);
    pool.push(0, &[0.0; 4]);
    pool.push(0, &[0.0; 4]);
    pool.push(1, &[0.0; 4]);
    assert_eq!(pool.pending_for(0), 2);
    assert_eq!(pool.pending_for(1), 1);
    pool.flush();
    assert_eq!(pool.pending_for(0), 0);
}
