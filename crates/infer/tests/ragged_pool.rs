//! Ragged-workload coverage for the batched session pools: streams of
//! unequal lengths that *join and finish mid-wave* must match per-session
//! streaming exactly. The uniform-wave parity tests elsewhere never shrink
//! or grow the active set between flushes; real serving traffic does little
//! else.

use pit_infer::{
    compile_generic, compile_restcn, compile_temponet, InferencePlan, QuantizedPlan,
    QuantizedSession, QuantizedSessionPool, Session, SessionPool,
};
use pit_models::{GenericTcn, GenericTcnConfig, ResTcn, ResTcnConfig, TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One stream's lifetime inside the ragged schedule: it joins at round
/// `start` and contributes `len` samples, one per round.
#[derive(Debug, Clone, Copy)]
struct Lifetime {
    start: usize,
    len: usize,
}

/// Builds per-stream inputs and a staggered schedule: stream `sid` is silent
/// until `start`, pushes one sample per round while alive, then goes silent —
/// so every wave boundary (join, finish) lands mid-flush for some stream.
fn ragged_inputs(
    rng: &mut StdRng,
    streams: usize,
    c: usize,
    max_len: usize,
) -> (Vec<Vec<f32>>, Vec<Lifetime>) {
    let inputs: Vec<Vec<f32>> = (0..streams)
        .map(|_| (0..max_len * c).map(|_| rng.gen::<f32>() - 0.5).collect())
        .collect();
    let lifetimes: Vec<Lifetime> = (0..streams)
        .map(|sid| Lifetime {
            start: rng.gen_range(0..max_len / 2) * (sid % 3),
            len: rng.gen_range(1..=max_len),
        })
        .collect();
    (inputs, lifetimes)
}

/// Drives the ragged schedule through the f32 pool and through solo
/// sessions; emissions must agree stream by stream, value by value.
fn assert_f32_ragged_parity(plan: Arc<InferencePlan>, streams: usize, max_len: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = plan.input_channels();
    let (inputs, lifetimes) = ragged_inputs(&mut rng, streams, c, max_len);

    let mut pool = SessionPool::new(Arc::clone(&plan), streams);
    let mut pooled: Vec<Vec<Vec<f32>>> = vec![Vec::new(); streams];
    let rounds = lifetimes.iter().map(|l| l.start + l.len).max().unwrap();
    for round in 0..rounds {
        for (sid, life) in lifetimes.iter().enumerate() {
            if round >= life.start && round < life.start + life.len {
                let t = round - life.start;
                pool.push(sid, &inputs[sid][t * c..(t + 1) * c]);
            }
        }
        for (sid, out) in pool.flush() {
            pooled[sid].push(out);
        }
    }
    assert_eq!(pool.pending_steps(), 0);

    for (sid, life) in lifetimes.iter().enumerate() {
        let mut solo = Session::new(Arc::clone(&plan));
        let mut outs = Vec::new();
        for t in 0..life.len {
            if let Some(out) = solo.push(&inputs[sid][t * c..(t + 1) * c]) {
                outs.push(out);
            }
        }
        assert_eq!(
            outs.len(),
            pooled[sid].len(),
            "stream {sid} ({life:?}): emission count"
        );
        for (i, (a, b)) in outs.iter().zip(pooled[sid].iter()).enumerate() {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "stream {sid} emission {i}: solo {x} vs pooled {y}"
                );
            }
        }
    }
}

/// Quantized twin of [`assert_f32_ragged_parity`]; int8 arithmetic is exact,
/// so pooled and solo emissions must be *bit-identical*.
fn assert_i8_ragged_parity(qplan: Arc<QuantizedPlan>, streams: usize, max_len: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = qplan.input_channels();
    let (inputs, lifetimes) = ragged_inputs(&mut rng, streams, c, max_len);

    let mut pool = QuantizedSessionPool::new(Arc::clone(&qplan), streams);
    let mut pooled: Vec<Vec<Vec<f32>>> = vec![Vec::new(); streams];
    let rounds = lifetimes.iter().map(|l| l.start + l.len).max().unwrap();
    for round in 0..rounds {
        for (sid, life) in lifetimes.iter().enumerate() {
            if round >= life.start && round < life.start + life.len {
                let t = round - life.start;
                pool.push(sid, &inputs[sid][t * c..(t + 1) * c]);
            }
        }
        for (sid, out) in pool.flush() {
            pooled[sid].push(out);
        }
    }
    assert_eq!(pool.pending_steps(), 0);

    for (sid, life) in lifetimes.iter().enumerate() {
        let mut solo = QuantizedSession::new(Arc::clone(&qplan));
        let mut outs = Vec::new();
        for t in 0..life.len {
            if let Some(out) = solo.push(&inputs[sid][t * c..(t + 1) * c]) {
                outs.push(out);
            }
        }
        assert_eq!(&outs, &pooled[sid], "stream {sid} ({life:?}) diverged");
    }
}

/// Calibration windows wide enough to cover any ragged stream prefix.
fn calibration_windows(rng: &mut StdRng, c: usize, t: usize) -> Vec<Tensor> {
    (0..3)
        .map(|_| init::uniform(rng, &[1, c, t], 1.0))
        .collect()
}

#[test]
fn ragged_temponet_pool_matches_solo_sessions() {
    // Strided pooling + Fc window head: the active set shrinks both from
    // ragged queues *and* per-session pool phase.
    let mut rng = StdRng::seed_from_u64(50);
    let cfg = TempoNetConfig::scaled(8, 64);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    assert_f32_ragged_parity(Arc::new(compile_temponet(&net)), 6, 48, 51);
}

#[test]
fn ragged_restcn_pool_matches_solo_sessions() {
    let mut rng = StdRng::seed_from_u64(52);
    let cfg = ResTcnConfig {
        hidden_channels: 6,
        input_channels: 3,
        output_channels: 3,
        dropout: 0.0,
        ..ResTcnConfig::paper()
    };
    let net = ResTcn::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    assert_f32_ragged_parity(Arc::new(compile_restcn(&net)), 5, 30, 53);
}

#[test]
fn ragged_generic_pool_matches_solo_sessions() {
    let mut rng = StdRng::seed_from_u64(54);
    let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
    net.set_dilations(&[4, 8]);
    assert_f32_ragged_parity(Arc::new(compile_generic(&net)), 7, 25, 55);
}

#[test]
fn ragged_quantized_temponet_pool_is_bit_exact() {
    let mut rng = StdRng::seed_from_u64(56);
    let cfg = TempoNetConfig::scaled(8, 64);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = Arc::new(compile_temponet(&net));
    let windows = calibration_windows(&mut rng, plan.input_channels(), 64);
    let qplan = Arc::new(QuantizedPlan::quantize(&plan, &windows).expect("quantizes"));
    assert_i8_ragged_parity(qplan, 6, 48, 57);
}

#[test]
fn ragged_quantized_generic_pool_is_bit_exact() {
    let mut rng = StdRng::seed_from_u64(58);
    let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
    net.set_dilations(&[4, 8]);
    let plan = Arc::new(compile_generic(&net));
    let windows = calibration_windows(&mut rng, plan.input_channels(), 32);
    let qplan = Arc::new(QuantizedPlan::quantize(&plan, &windows).expect("quantizes"));
    assert_i8_ragged_parity(qplan, 7, 25, 59);
}

#[test]
fn burst_pushes_drain_in_narrowing_waves() {
    // One flush covering several waves: session 0 queues 4 samples, session
    // 1 queues 2, session 2 queues 1 — the first wave runs 3 sessions, the
    // second 2, then 1, 1. Chronology per session must survive.
    let mut rng = StdRng::seed_from_u64(60);
    let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
    net.set_dilations(&[2, 4]);
    let plan = Arc::new(compile_generic(&net));
    let mut pool = SessionPool::new(Arc::clone(&plan), 3);
    let samples: Vec<f32> = (0..4).map(|i| 0.1 * i as f32 - 0.15).collect();
    for (sid, n) in [(0usize, 4usize), (1, 2), (2, 1)] {
        for s in samples.iter().take(n) {
            pool.push(sid, &[*s]);
        }
    }
    assert_eq!(pool.pending_steps(), 7);
    let results = pool.flush();
    assert_eq!(results.len(), 7);
    for (sid, n) in [(0usize, 4usize), (1, 2), (2, 1)] {
        let mut solo = Session::new(Arc::clone(&plan));
        let solo_outs: Vec<_> = samples
            .iter()
            .take(n)
            .filter_map(|s| solo.push(&[*s]))
            .collect();
        let pooled: Vec<_> = results
            .iter()
            .filter(|(id, _)| *id == sid)
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(solo_outs.len(), pooled.len(), "stream {sid}");
        for (a, b) in solo_outs.iter().zip(pooled.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5, "stream {sid}: {x} vs {y}");
            }
        }
    }
}
