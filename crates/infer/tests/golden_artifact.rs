//! Golden-fixture tests freezing the weight-bearing `pit-arch/2` artifact
//! format.
//!
//! The fixtures live beside the `pit-arch/1` geometry fixture in
//! `crates/models/tests/fixtures/` and are committed artifacts of the
//! serialization format as shipped: model files live outside the
//! repository, so a silent format change would orphan every deployed
//! artifact. If these tests fail because the format intentionally changed,
//! bump the schema tag (`pit-arch/3`), keep parsing `pit-arch/2`, and add
//! new fixtures — do not regenerate these.
//!
//! To (re)create the fixtures after an intentional schema bump:
//! `cargo test -p pit-infer --test golden_artifact -- --ignored`.

use pit_infer::{
    CompiledConv, Dense, InferencePlan, PlanArtifact, PlanBlock, PlanHead, PoolSpec, QuantizedPlan,
    QuantizedSession, Session, ARTIFACT_SCHEMA,
};
use pit_tensor::Tensor;
use std::sync::Arc;

const FIXTURE_F32: &str = include_str!("../../models/tests/fixtures/pit_arch_v2_f32.json");
const FIXTURE_I8: &str = include_str!("../../models/tests/fixtures/pit_arch_v2_i8.json");
const FIXTURE_V1: &str = include_str!("../../models/tests/fixtures/pit_arch_v1.json");

/// Deterministic pattern weights: exactly representable values so the
/// fixture bytes are identical on every platform.
fn patterned(dims: &[usize], salt: usize) -> Tensor {
    let len: usize = dims.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| ((i * 37 + salt * 13 + 11) % 29) as f32 / 32.0 - 0.4375)
        .collect();
    Tensor::from_vec(data, dims).expect("pattern shape")
}

/// The fixture network: one residual block with a downsample projection,
/// one plain block closed by strided pooling, and a flatten-window MLP head
/// — every structural feature of the artifact schema in one small plan.
fn fixture_plan() -> InferencePlan {
    let conv = |c_in: usize, c_out: usize, k: usize, d: usize, salt: usize| {
        CompiledConv::new(
            patterned(&[c_out, c_in, k], salt),
            patterned(&[c_out], salt + 100),
            d,
        )
    };
    let blocks = vec![
        PlanBlock::Residual {
            conv1: conv(3, 6, 3, 2, 1),
            conv2: conv(6, 6, 2, 4, 2),
            downsample: Some(conv(3, 6, 1, 1, 3)),
        },
        PlanBlock::Plain {
            convs: vec![conv(6, 5, 3, 1, 4)],
            pool: Some(PoolSpec {
                kernel: 2,
                stride: 2,
            }),
        },
    ];
    let head = PlanHead::Fc {
        hidden: Dense::new(patterned(&[20, 8], 5), patterned(&[8], 6)),
        output: Dense::new(patterned(&[8, 2], 7), patterned(&[2], 8)),
        channels: 5,
        window: 4,
    };
    InferencePlan::new("golden-fixture", 3, blocks, head)
}

fn fixture_calibration() -> Tensor {
    patterned(&[1, 3, 8], 9)
}

fn fixture_qplan() -> QuantizedPlan {
    QuantizedPlan::quantize(
        &fixture_plan(),
        std::slice::from_ref(&fixture_calibration()),
    )
    .expect("fixture quantizes")
}

#[test]
fn golden_f32_fixture_still_parses() {
    let plan = InferencePlan::from_artifact_str(FIXTURE_F32).expect("committed fixture parses");
    assert_eq!(plan.name(), "golden-fixture");
    assert_eq!(plan.input_channels(), 3);
    assert_eq!(plan.output_dim(), 2);
    assert_eq!(plan.blocks().len(), 2);
    // Spot-check real weight values so a payload reorder that still parses
    // cannot slip through.
    let reference = fixture_plan();
    assert_eq!(plan.num_weights(), reference.num_weights());
    let x = patterned(&[1, 3, 8], 20);
    let a = plan.forward(&x).unwrap();
    let b = reference.forward(&x).unwrap();
    assert_eq!(a.data(), b.data(), "fixture weights must match the builder");
}

#[test]
fn golden_f32_fixture_roundtrip_is_byte_stable() {
    let plan = InferencePlan::from_artifact_str(FIXTURE_F32).unwrap();
    assert_eq!(
        plan.to_artifact_string().trim_end(),
        FIXTURE_F32.trim_end(),
        "parse → render no longer reproduces the committed fixture: the \
         serialization format changed — bump the schema instead"
    );
}

#[test]
fn golden_i8_fixture_still_parses_and_streams() {
    let qplan = QuantizedPlan::from_artifact_str(FIXTURE_I8).expect("committed fixture parses");
    assert_eq!(qplan.name(), "golden-fixture-int8");
    assert_eq!(qplan.output_dim(), 2);
    assert!(qplan.error_bound() > 0.0);
    // The deserialized plan must stream bit-identically to a freshly
    // quantized twin.
    let reference = fixture_qplan();
    assert_eq!(qplan.error_bound(), reference.error_bound());
    let mut a = QuantizedSession::new(Arc::new(qplan));
    let mut b = QuantizedSession::new(Arc::new(reference));
    let x = fixture_calibration();
    let mut sample = [0.0f32; 3];
    for t in 0..8 {
        for (ci, slot) in sample.iter_mut().enumerate() {
            *slot = x.data()[ci * 8 + t];
        }
        assert_eq!(a.push(&sample), b.push(&sample), "step {t}");
    }
}

#[test]
fn golden_i8_fixture_roundtrip_is_byte_stable() {
    let qplan = QuantizedPlan::from_artifact_str(FIXTURE_I8).unwrap();
    assert_eq!(
        qplan.to_artifact_string().trim_end(),
        FIXTURE_I8.trim_end(),
        "parse → render no longer reproduces the committed fixture: the \
         serialization format changed — bump the schema instead"
    );
}

#[test]
fn golden_fixtures_carry_the_v2_schema_tag() {
    assert_eq!(ARTIFACT_SCHEMA, "pit-arch/2");
    assert!(FIXTURE_F32.contains("\"pit-arch/2\""));
    assert!(FIXTURE_I8.contains("\"pit-arch/2\""));
}

#[test]
fn v2_fixtures_parse_as_geometry_descriptors() {
    // A pit-arch/2 artifact is a superset of the v1 geometry document.
    for text in [FIXTURE_F32, FIXTURE_I8] {
        let desc = pit_models::NetworkDescriptor::from_json_str(text).expect("geometry parses");
        assert!(!desc.name.is_empty());
        assert!(desc.total_macs() > 0);
        assert!(desc
            .layers
            .iter()
            .any(|l| matches!(l, pit_models::LayerDesc::AvgPool { .. })));
    }
}

#[test]
fn v1_geometry_fixture_still_parses_and_is_distinguished_from_v2() {
    // The weight-less v1 format keeps parsing as geometry…
    let desc = pit_models::NetworkDescriptor::from_json_str(FIXTURE_V1).expect("v1 parses");
    assert_eq!(desc.name, "ppg-temponet-searched");
    // …and the artifact loader refuses it with a pointed error instead of
    // serving a zero-weight model.
    let err = PlanArtifact::from_json_str(FIXTURE_V1).unwrap_err();
    assert!(err.contains("geometry only"), "{err}");
    // Geometry-only loading still has its explicit path.
    let plan = InferencePlan::from_descriptor(&desc).expect("geometry-only plan");
    assert_eq!(plan.output_dim(), 1);
}

#[test]
fn v2_loader_round_trips_the_session_outputs() {
    let loaded = match PlanArtifact::from_json_str(FIXTURE_F32).unwrap() {
        PlanArtifact::F32(plan) => plan,
        PlanArtifact::I8(_) => panic!("f32 fixture"),
    };
    let mut session = Session::new(Arc::new(loaded));
    let x = fixture_calibration();
    let mut reference = Session::new(Arc::new(fixture_plan()));
    let mut sample = [0.0f32; 3];
    for t in 0..8 {
        for (ci, slot) in sample.iter_mut().enumerate() {
            *slot = x.data()[ci * 8 + t];
        }
        assert_eq!(session.push(&sample), reference.push(&sample));
    }
}

/// Regenerates the committed fixtures. Run only on an intentional schema
/// change: `cargo test -p pit-infer --test golden_artifact -- --ignored`.
#[test]
#[ignore = "writes the committed fixtures; run only on an intentional schema change"]
fn regenerate_golden_fixtures() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../models/tests/fixtures")
        .canonicalize()
        .expect("fixtures dir");
    std::fs::write(
        dir.join("pit_arch_v2_f32.json"),
        fixture_plan().to_artifact_string(),
    )
    .expect("write f32 fixture");
    std::fs::write(
        dir.join("pit_arch_v2_i8.json"),
        fixture_qplan().to_artifact_string(),
    )
    .expect("write i8 fixture");
}
