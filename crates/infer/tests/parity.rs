//! Parity tests: streaming one-timestep-at-a-time must match the offline
//! masked forward and the compiled plan's offline forward within `1e-5`,
//! including on odd geometries (K = 1, dilation beyond the sequence, single
//! channels, lengths that don't divide the kernel tiling).

use pit_infer::{CompiledConv, InferencePlan, PlanHead, Session, SessionPool};
use pit_nas::PitConv1d;
use pit_nn::{Layer, Mode};
use pit_tensor::ops::mask::gamma_len;
use pit_tensor::{init, Tape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Wraps a single compiled convolution as a head-only plan and streams `x`
/// (`[1, C, T]`) one sample at a time, returning the `[C_out, T]` outputs.
fn stream_conv(conv: &CompiledConv, x: &Tensor) -> Vec<Vec<f32>> {
    let plan = Arc::new(InferencePlan::new(
        "conv-parity",
        conv.in_channels(),
        Vec::new(),
        PlanHead::PerStep(conv.clone()),
    ));
    let (c, t) = (x.dims()[1], x.dims()[2]);
    let mut session = Session::new(plan);
    let mut sample = vec![0.0f32; c];
    let mut outputs = Vec::with_capacity(t);
    for tt in 0..t {
        for ci in 0..c {
            sample[ci] = x.data()[ci * t + tt];
        }
        outputs.push(session.push(&sample).expect("per-step head emits"));
    }
    outputs
}

fn assert_columns_match(offline: &Tensor, streamed: &[Vec<f32>], tol: f32, label: &str) {
    let (c_out, t) = (offline.dims()[1], offline.dims()[2]);
    assert_eq!(streamed.len(), t, "{label}: emission count");
    for (tt, col) in streamed.iter().enumerate() {
        for co in 0..c_out {
            let want = offline.data()[co * t + tt];
            assert!(
                (col[co] - want).abs() < tol,
                "{label}: t={tt} co={co}: streamed {} vs offline {want}",
                col[co]
            );
        }
    }
}

#[test]
fn streaming_matches_offline_on_odd_geometries() {
    // (c_in, c_out, k, dilation, t): the checklist geometries — K = 1,
    // dilation larger than the sequence, single channel — plus tiling-hostile
    // lengths.
    let cases = [
        (1usize, 1usize, 1usize, 1usize, 1usize), // everything degenerate
        (3, 4, 1, 3, 16),                         // K = 1
        (2, 3, 3, 7, 4),                          // dilation > T
        (1, 1, 5, 2, 9),                          // single channel
        (2, 2, 2, 8, 16),                         // receptive field == T
        (5, 3, 4, 2, 33),                         // T not a multiple of the tile
        (1, 6, 9, 4, 20),                         // wide fan-out
    ];
    let mut rng = StdRng::seed_from_u64(0);
    for (c_in, c_out, k, d, t) in cases {
        let w = init::uniform(&mut rng, &[c_out, c_in, k], 1.0);
        let b = init::uniform(&mut rng, &[c_out], 1.0);
        let conv = CompiledConv::new(w.clone(), b.clone(), d);
        let x = init::uniform(&mut rng, &[1, c_in, t], 1.0);
        let offline = x.conv1d_causal(&w, Some(&b), d).unwrap();
        let plan_offline = conv.forward_offline(&x).unwrap();
        assert!(
            offline.approx_eq(&plan_offline, 1e-5),
            "plan offline mismatch on c{c_in}->{c_out} k{k} d{d} t{t}"
        );
        let streamed = stream_conv(&conv, &x);
        assert_columns_match(
            &offline,
            &streamed,
            1e-5,
            &format!("c{c_in}->{c_out} k{k} d{d} t{t}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A searchable layer at a random legal dilation: the offline masked
    /// forward (tape), the compiled plan's offline forward and the streamed
    /// per-step outputs agree within 1e-5.
    #[test]
    fn masked_compiled_and_streamed_agree(
        rf_exp in 1usize..5,
        choice in 0usize..6,
        c_in in 1usize..4,
        c_out in 1usize..5,
        t in 1usize..40,
        seed in 0u64..1000,
    ) {
        let rf_max = (1usize << rf_exp) + 1;
        let l = gamma_len(rf_max);
        let d = 1usize << (choice % l);
        let mut rng = StdRng::seed_from_u64(seed);
        let searchable = PitConv1d::new(&mut rng, c_in, c_out, rf_max, "parity");
        searchable.set_dilation(d);

        let x = init::uniform(&mut rng, &[1, c_in, t], 1.0);
        // 1. Offline masked forward through the tape (the training path).
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let y = searchable.forward(&mut tape, vx, Mode::Eval);
        let masked = tape.value(y).clone();

        // 2. The compiled plan's offline forward (true dilation, no tape).
        let compiled = CompiledConv::from_searchable(&searchable);
        prop_assert_eq!(compiled.kernel(), (rf_max - 1) / d + 1);
        let plan_offline = compiled.forward_offline(&x).unwrap();
        prop_assert!(
            masked.approx_eq(&plan_offline, 1e-5),
            "compiled offline diverged (rf {}, d {})", rf_max, d
        );

        // 2b. Tape-free mask extraction: the dense weights convolved under
        // the extracted binarised mask (fused masked kernel, no tape) must
        // equal the tape-built masked forward too.
        let mask_values = searchable.time_mask_values();
        prop_assert_eq!(
            mask_values.iter().filter(|&&m| m == 1.0).count(),
            compiled.kernel(),
            "extracted mask keeps a different tap count than the compiled plan"
        );
        let mask = Tensor::from_vec(mask_values, &[rf_max]).unwrap();
        let extracted = x
            .conv1d_causal_masked(
                &searchable.weight_param().value(),
                &mask,
                Some(&searchable.bias_param().value()),
                1,
            )
            .unwrap();
        prop_assert!(
            masked.approx_eq(&extracted, 1e-5),
            "extracted-mask forward diverged (rf {}, d {})", rf_max, d
        );

        // 3. Streaming one timestep at a time.
        let streamed = stream_conv(&compiled, &x);
        for (tt, col) in streamed.iter().enumerate() {
            for co in 0..c_out {
                let want = masked.data()[co * t + tt];
                prop_assert!(
                    (col[co] - want).abs() < 1e-5,
                    "stream diverged at t={} co={} (rf {}, d {})", tt, co, rf_max, d
                );
            }
        }
    }

    /// Batching sessions in a pool never changes any stream's outputs, for
    /// random conv geometry and stream count.
    #[test]
    fn session_pool_matches_solo_sessions(
        c_in in 1usize..3,
        c_out in 1usize..4,
        k in 1usize..5,
        d in 1usize..6,
        streams in 1usize..6,
        t in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = init::uniform(&mut rng, &[c_out, c_in, k], 1.0);
        let b = init::uniform(&mut rng, &[c_out], 1.0);
        let conv = CompiledConv::new(w, b, d);
        let plan = Arc::new(InferencePlan::new(
            "pool-parity",
            c_in,
            Vec::new(),
            PlanHead::PerStep(conv),
        ));
        let inputs: Vec<Tensor> = (0..streams)
            .map(|_| init::uniform(&mut rng, &[1, c_in, t], 1.0))
            .collect();

        let mut pool = SessionPool::new(Arc::clone(&plan), streams);
        let mut pooled: Vec<Vec<Vec<f32>>> = vec![Vec::new(); streams];
        let mut sample = vec![0.0f32; c_in];
        for tt in 0..t {
            for (sid, x) in inputs.iter().enumerate() {
                for ci in 0..c_in {
                    sample[ci] = x.data()[ci * t + tt];
                }
                pool.push(sid, &sample);
            }
            for (sid, out) in pool.flush() {
                pooled[sid].push(out);
            }
        }
        for (sid, x) in inputs.iter().enumerate() {
            let solo = stream_conv(match plan.head() {
                PlanHead::PerStep(conv) => conv,
                _ => unreachable!(),
            }, x);
            prop_assert_eq!(solo.len(), pooled[sid].len());
            for (a, b) in solo.iter().zip(pooled[sid].iter()) {
                for (xa, xb) in a.iter().zip(b.iter()) {
                    prop_assert!((xa - xb).abs() < 1e-5, "stream {} diverged", sid);
                }
            }
        }
    }
}
