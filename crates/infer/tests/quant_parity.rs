//! Quantized↔f32 parity, pinned by the analytically derived error bound.
//!
//! Every test calibrates the f32 plan on the exact windows it then streams
//! (so the bound's "activations stay inside the calibrated ranges" premise
//! holds by construction), lowers to int8 and asserts that every streamed
//! quantized output sits within [`QuantizedPlan::error_bound`] of the f32
//! engine — plus a hair of slack for the f32 rounding the integer-side
//! analysis does not model (the bound governs seam/weight rounding; the
//! dequantize multiplies and the f32 reference itself carry ~1e-7-relative
//! float noise).

use pit_infer::{
    compile_generic, compile_restcn, compile_temponet, Calibration, CompiledConv, InferencePlan,
    PlanHead, QuantizedPlan, QuantizedSession, QuantizedSessionPool, Session,
};
use pit_models::{GenericTcn, GenericTcnConfig, ResTcn, ResTcnConfig, TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Slack added on top of the analytic bound for f32 rounding outside the
/// integer analysis (dequantize multiplies, reference arithmetic).
fn tolerance(bound: f32) -> f32 {
    bound * 1.001 + 1e-4
}

/// Streams `x` (`[1, C, T]`) through an f32 and an int8 session; asserts the
/// emission schedules are identical and every quantized output is within the
/// plan's error bound of the f32 output. Returns the largest |f32 − int8|
/// seen, so callers can also assert the int8 path genuinely quantizes.
fn assert_streaming_parity(
    plan: &Arc<InferencePlan>,
    qplan: &Arc<QuantizedPlan>,
    x: &Tensor,
) -> f32 {
    let (c, t) = (x.dims()[1], x.dims()[2]);
    let tol = tolerance(qplan.error_bound());
    let mut f32_session = Session::new(Arc::clone(plan));
    let mut i8_session = QuantizedSession::new(Arc::clone(qplan));
    let mut sample = vec![0.0f32; c];
    let mut emissions = 0usize;
    let mut max_diff = 0.0f32;
    for tt in 0..t {
        for ci in 0..c {
            sample[ci] = x.data()[ci * t + tt];
        }
        let f = f32_session.push(&sample);
        let q = i8_session.push(&sample);
        assert_eq!(
            f.is_some(),
            q.is_some(),
            "emission schedules diverged at t={tt}"
        );
        if let (Some(f), Some(q)) = (f, q) {
            emissions += 1;
            for (co, (&fv, &qv)) in f.iter().zip(q.iter()).enumerate() {
                assert!(
                    (fv - qv).abs() <= tol,
                    "t={tt} co={co}: f32 {fv} vs int8 {qv} exceeds bound {} (tol {tol})",
                    qplan.error_bound()
                );
                max_diff = max_diff.max((fv - qv).abs());
            }
        }
    }
    assert!(emissions > 0, "stream never emitted");
    max_diff
}

/// Builds a head-only plan around one compiled convolution.
fn conv_plan(conv: CompiledConv) -> InferencePlan {
    InferencePlan::new(
        "conv-quant-parity",
        conv.in_channels(),
        Vec::new(),
        PlanHead::PerStep(conv),
    )
}

#[test]
fn quantized_conv_parity_on_odd_geometries() {
    // (c_in, c_out, k, dilation, t): the acceptance geometries — K = 1,
    // dilation larger than the sequence, single channel — plus
    // tiling-hostile lengths.
    let cases = [
        (1usize, 1usize, 1usize, 1usize, 1usize), // everything degenerate
        (3, 4, 1, 3, 16),                         // K = 1
        (2, 3, 3, 7, 4),                          // dilation > T
        (1, 1, 5, 2, 9),                          // single channel
        (2, 2, 2, 8, 16),                         // receptive field == T
        (5, 3, 4, 2, 33),                         // T not a multiple of the tile
        (1, 6, 9, 4, 20),                         // wide fan-out
    ];
    let mut rng = StdRng::seed_from_u64(40);
    for (c_in, c_out, k, d, t) in cases {
        let w = init::uniform(&mut rng, &[c_out, c_in, k], 1.0);
        let b = init::uniform(&mut rng, &[c_out], 1.0);
        let x = init::uniform(&mut rng, &[1, c_in, t], 1.0);
        let plan = Arc::new(conv_plan(CompiledConv::new(w, b, d)));
        let qplan =
            Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"));
        assert_streaming_parity(&plan, &qplan, &x);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-conv plans over random geometry (covering K = 1, dilation far
    /// beyond T and single-channel cases by construction): every streamed
    /// int8 output honours the analytic bound.
    #[test]
    fn quantized_conv_respects_the_analytic_bound(
        c_in in 1usize..4,
        c_out in 1usize..5,
        k in 1usize..6,
        d in 1usize..9,
        t in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = init::uniform(&mut rng, &[c_out, c_in, k], 1.0);
        let b = init::uniform(&mut rng, &[c_out], 1.0);
        let x = init::uniform(&mut rng, &[1, c_in, t], 1.0);
        let plan = Arc::new(conv_plan(CompiledConv::new(w, b, d)));
        let qplan = Arc::new(
            QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"),
        );
        prop_assert!(qplan.error_bound().is_finite());
        assert_streaming_parity(&plan, &qplan, &x);
    }

    /// Batching quantized sessions in a pool is *bit-exact* against solo
    /// quantized sessions: integer accumulation has one result regardless of
    /// whether a wave GEMM or per-step dots produced it.
    #[test]
    fn quantized_pool_is_bit_exact_with_solo_sessions(
        c_in in 1usize..3,
        c_out in 1usize..4,
        k in 1usize..5,
        d in 1usize..6,
        streams in 1usize..6,
        t in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = init::uniform(&mut rng, &[c_out, c_in, k], 1.0);
        let b = init::uniform(&mut rng, &[c_out], 1.0);
        let inputs: Vec<Tensor> = (0..streams)
            .map(|_| init::uniform(&mut rng, &[1, c_in, t], 1.0))
            .collect();
        let plan = Arc::new(conv_plan(CompiledConv::new(w, b, d)));
        let qplan = Arc::new(QuantizedPlan::quantize(&plan, &inputs).expect("quantizes"));

        let mut pool = QuantizedSessionPool::new(Arc::clone(&qplan), streams);
        let mut pooled: Vec<Vec<Vec<f32>>> = vec![Vec::new(); streams];
        let mut sample = vec![0.0f32; c_in];
        for tt in 0..t {
            for (sid, x) in inputs.iter().enumerate() {
                for ci in 0..c_in {
                    sample[ci] = x.data()[ci * t + tt];
                }
                pool.push(sid, &sample);
            }
            for (sid, out) in pool.flush() {
                pooled[sid].push(out);
            }
        }
        for (sid, x) in inputs.iter().enumerate() {
            let mut solo = QuantizedSession::new(Arc::clone(&qplan));
            let mut outs = Vec::new();
            for tt in 0..t {
                for ci in 0..c_in {
                    sample[ci] = x.data()[ci * t + tt];
                }
                if let Some(out) = solo.push(&sample) {
                    outs.push(out);
                }
            }
            prop_assert_eq!(&outs, &pooled[sid], "stream {} diverged", sid);
        }
    }
}

#[test]
fn quantized_temponet_streams_within_bound_and_shrinks_state() {
    let mut rng = StdRng::seed_from_u64(41);
    let cfg = TempoNetConfig::scaled(8, 64);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = Arc::new(compile_temponet(&net));
    let x = init::uniform(&mut rng, &[1, 4, 64], 1.0);
    let qplan =
        Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"));
    let max_diff = assert_streaming_parity(&plan, &qplan, &x);
    // A real int8 path shows *some* quantization error (a zero diff would
    // mean the f32 kernels ran), bounded above by the analytic bound.
    assert!(max_diff > 0.0, "suspiciously exact: int8 path ran f32?");
    assert!(qplan.error_bound() > 0.0);
    // The acceptance claims: ~4x smaller per-stream state (i8 rings dominate;
    // only the small f32 pool windows keep it under exactly 4x) and ~4x
    // smaller weight payload.
    let f32_state = 4 * plan.session_state_floats();
    let ratio = f32_state as f64 / qplan.session_state_bytes() as f64;
    assert!(ratio > 3.0, "state ratio {ratio:.2} not ~4x");
    let weight_ratio = (4 * plan.num_weights()) as f64 / qplan.weight_bytes() as f64;
    assert!(weight_ratio > 3.0, "weight ratio {weight_ratio:.2} not ~4x");
    assert_eq!(qplan.output_dim(), plan.output_dim());
    assert_eq!(qplan.input_channels(), plan.input_channels());
    assert!(qplan.name().ends_with("-int8"));
}

#[test]
fn quantized_restcn_streams_within_bound() {
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = ResTcnConfig {
        hidden_channels: 8,
        input_channels: 5,
        output_channels: 5,
        dropout: 0.0,
        ..ResTcnConfig::paper()
    };
    let net = ResTcn::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = Arc::new(compile_restcn(&net));
    let x = init::uniform(&mut rng, &[1, 5, 40], 1.0);
    let qplan =
        Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"));
    assert_streaming_parity(&plan, &qplan, &x);
}

#[test]
fn quantized_generic_streams_within_bound() {
    let mut rng = StdRng::seed_from_u64(43);
    let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
    net.set_dilations(&[4, 8]);
    let plan = Arc::new(compile_generic(&net));
    let x = init::uniform(&mut rng, &[1, 1, 32], 1.0);
    let qplan =
        Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"));
    assert_streaming_parity(&plan, &qplan, &x);
}

#[test]
fn fc_head_mid_fill_emissions_respect_the_bound() {
    // Adversarial Fc head: hidden = -f[0] + f[1] cancels on the aligned
    // full window ([1.0, 1.01] → 0.01) but spikes on the zero-padded
    // mid-fill window ([0, 1.0] → 1.0). Calibration must cover the streamed
    // (ring) window positions, not just the offline full-window activation —
    // otherwise the output seam saturates ~100x beyond the bound at t=0.
    use pit_infer::Dense;
    let hidden = Dense::new(
        Tensor::from_vec(vec![-1.0, 1.0], &[2, 1]).unwrap(),
        Tensor::zeros(&[1]),
    );
    let output = Dense::new(
        Tensor::from_vec(vec![1.0], &[1, 1]).unwrap(),
        Tensor::zeros(&[1]),
    );
    let plan = Arc::new(InferencePlan::new(
        "fc-midfill",
        1,
        Vec::new(),
        PlanHead::Fc {
            hidden,
            output,
            channels: 1,
            window: 2,
        },
    ));
    let x = Tensor::from_vec(vec![1.0, 1.01], &[1, 1, 2]).unwrap();
    let qplan =
        Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"));
    assert_streaming_parity(&plan, &qplan, &x);
}

#[test]
fn quantized_session_reset_restores_the_zero_state() {
    let mut rng = StdRng::seed_from_u64(44);
    let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
    let plan = Arc::new(compile_generic(&net));
    let x = init::uniform(&mut rng, &[1, 1, 12], 1.0);
    let qplan =
        Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"));
    let mut session = QuantizedSession::new(Arc::clone(&qplan));
    let stream = |s: &mut QuantizedSession| -> Vec<Vec<f32>> {
        (0..12).filter_map(|t| s.push(&[x.data()[t]])).collect()
    };
    let first = stream(&mut session);
    session.reset();
    let second = stream(&mut session);
    assert_eq!(first, second);
}

#[test]
fn calibration_must_match_the_plan_it_lowers() {
    let mut rng = StdRng::seed_from_u64(45);
    let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
    let plan = Arc::new(compile_generic(&net));
    let x = init::uniform(&mut rng, &[1, 1, 8], 1.0);
    let cal = Calibration::collect(&plan, std::slice::from_ref(&x)).unwrap();
    assert_eq!(cal.len(), plan.num_seams());

    // A calibration for a different plan (different seam count) is rejected.
    let w = Tensor::zeros(&[1, 1, 1]);
    let other = Arc::new(conv_plan(CompiledConv::new(w, Tensor::zeros(&[1]), 1)));
    assert_ne!(other.num_seams(), plan.num_seams());
    let err = QuantizedPlan::new(&other, &cal).unwrap_err();
    assert!(err.contains("seams"), "{err}");

    // A window with the wrong channel count fails calibration cleanly.
    let bad = Tensor::zeros(&[1, 3, 8]);
    assert!(Calibration::collect(&plan, std::slice::from_ref(&bad)).is_err());

    // No windows at all is rejected too — all-zero ranges would silently
    // crush every activation onto three codes.
    assert!(Calibration::collect(&plan, &[]).is_err());
    assert!(QuantizedPlan::quantize(&plan, &[]).is_err());
}

#[test]
fn all_zero_plan_quantizes_exactly() {
    // Zero weights quantize losslessly: the bound collapses to zero and the
    // quantized stream is exactly the (all-bias) f32 stream.
    let w = Tensor::zeros(&[2, 1, 3]);
    let b = Tensor::from_vec(vec![0.25, -0.5], &[2]).unwrap();
    let plan = Arc::new(conv_plan(CompiledConv::new(w, b, 2)));
    let x = Tensor::from_vec((0..10).map(|i| i as f32 * 0.1).collect(), &[1, 1, 10]).unwrap();
    let qplan =
        Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantizes"));
    assert_eq!(qplan.error_bound(), 0.0);
    assert_streaming_parity(&plan, &qplan, &x);
}
