//! The model-zoo manifest: a searched Pareto front as an on-disk library.
//!
//! A `pit-search` run precomputes the accuracy/latency front once — search,
//! calibrate, quantize — and leaves behind a directory of `pit-arch/2`
//! artifact files plus one `zoo.json` manifest describing them. The manifest
//! is the hand-off point between search and serving: `pit-serve` boots from
//! it and registers every listed model side by side, so clients can pick
//! their operating point per stream by name.
//!
//! The schema (`pit-zoo/1`) is deliberately small and hand-rolled over
//! [`pit_tensor::json::Json`]:
//!
//! ```json
//! {
//!   "schema": "pit-zoo/1",
//!   "default": "pit-842p-i8",
//!   "models": [
//!     {
//!       "name": "pit-842p-i8",
//!       "path": "pit-842p-i8.pit2.json",
//!       "kind": "i8",
//!       "seed": 7,
//!       "lambda": 0.001,
//!       "params": 842,
//!       "receptive_field": 17,
//!       "val_loss": 0.052,
//!       "error_bound": 0.013,
//!       "input_channels": 2,
//!       "output_dim": 1
//!     }
//!   ]
//! }
//! ```
//!
//! `path` is relative to the manifest's own directory, so a library can be
//! moved or shipped as one folder. Parsing is defensive (every malformed
//! field is an `Err`, never a panic) — a serving daemon loads untrusted
//! manifests.

use pit_tensor::json::Json;
use std::path::{Path, PathBuf};

/// Manifest schema identifier.
pub const ZOO_SCHEMA: &str = "pit-zoo/1";

/// One artifact of the library: a `pit-arch/2` file plus the search-time
/// metadata a client needs to pick it (size, accuracy, quantization bound).
#[derive(Debug, Clone, PartialEq)]
pub struct ZooEntry {
    /// Registry name the daemon serves this model under (unique in the zoo).
    pub name: String,
    /// Artifact file path, relative to the manifest's directory.
    pub path: String,
    /// `"f32"` or `"i8"` (mirrors the artifact's `kind` field).
    pub kind: String,
    /// RNG seed of the search run that produced this point.
    pub seed: u64,
    /// Size-regulariser strength λ of the search run.
    pub lambda: f32,
    /// Deployed (effective) weight count — the size axis of the front.
    pub params: usize,
    /// Receptive field of the compiled plan, in timesteps.
    pub receptive_field: usize,
    /// Validation loss of the fine-tuned model — the accuracy axis.
    pub val_loss: f32,
    /// Analytic int8 parity bound (`0.0` for f32 artifacts).
    pub error_bound: f32,
    /// Input channels per timestep.
    pub input_channels: usize,
    /// Values per emitted head output.
    pub output_dim: usize,
}

impl ZooEntry {
    /// The entry's artifact path resolved against the manifest's directory.
    pub fn artifact_path(&self, base: &Path) -> PathBuf {
        base.join(&self.path)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("path".into(), Json::Str(self.path.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("lambda".into(), Json::Num(f64::from(self.lambda))),
            ("params".into(), Json::Num(self.params as f64)),
            (
                "receptive_field".into(),
                Json::Num(self.receptive_field as f64),
            ),
            ("val_loss".into(), Json::Num(f64::from(self.val_loss))),
            ("error_bound".into(), Json::Num(f64::from(self.error_bound))),
            (
                "input_channels".into(),
                Json::Num(self.input_channels as f64),
            ),
            ("output_dim".into(), Json::Num(self.output_dim as f64)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("zoo entry: missing string field '{key}'"))
        };
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("zoo entry: missing number field '{key}'"))
        };
        let dim = |key: &str| -> Result<usize, String> {
            let v = num(key)?;
            if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > 1e12 {
                return Err(format!("zoo entry: field '{key}' is not a valid count"));
            }
            Ok(v as usize)
        };
        let name = text("name")?;
        if name.is_empty() {
            return Err("zoo entry: empty model name".into());
        }
        let kind = text("kind")?;
        if kind != "f32" && kind != "i8" {
            return Err(format!("zoo entry '{name}': unknown kind '{kind}'"));
        }
        Ok(Self {
            path: text("path")?,
            kind,
            seed: dim("seed")? as u64,
            lambda: num("lambda")? as f32,
            params: dim("params")?,
            receptive_field: dim("receptive_field")?,
            val_loss: num("val_loss")? as f32,
            error_bound: num("error_bound")? as f32,
            input_channels: dim("input_channels")?,
            output_dim: dim("output_dim")?,
            name,
        })
    }
}

/// The `zoo.json` document: the library's model list plus which entry a
/// model-less OPEN should get.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooManifest {
    /// Name of the default model (must match one entry).
    pub default: String,
    /// The library, in Pareto order (ascending size) by convention.
    pub models: Vec<ZooEntry>,
}

impl ZooManifest {
    /// Builds a manifest over `models`, defaulting to `default`.
    ///
    /// # Errors
    ///
    /// Returns a message when `models` is empty, a name repeats, or
    /// `default` names no entry.
    pub fn new(default: impl Into<String>, models: Vec<ZooEntry>) -> Result<Self, String> {
        let default = default.into();
        if models.is_empty() {
            return Err("zoo manifest: no models".into());
        }
        for (i, entry) in models.iter().enumerate() {
            if models[..i].iter().any(|m| m.name == entry.name) {
                return Err(format!(
                    "zoo manifest: duplicate model name '{}'",
                    entry.name
                ));
            }
        }
        if !models.iter().any(|m| m.name == default) {
            return Err(format!("zoo manifest: default '{default}' names no model"));
        }
        Ok(Self { default, models })
    }

    /// The entry `name` refers to, if any.
    pub fn get(&self, name: &str) -> Option<&ZooEntry> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Renders the manifest as a `pit-zoo/1` JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(ZOO_SCHEMA.into())),
            ("default".into(), Json::Str(self.default.clone())),
            (
                "models".into(),
                Json::Arr(self.models.iter().map(ZooEntry::to_json).collect()),
            ),
        ])
    }

    /// [`ZooManifest::to_json`] rendered as text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parses a `pit-zoo/1` document.
    ///
    /// # Errors
    ///
    /// Returns a message on a schema mismatch or any malformed entry —
    /// never panics.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("zoo manifest: missing 'schema'")?;
        if schema != ZOO_SCHEMA {
            return Err(format!(
                "zoo manifest: schema '{schema}' is not '{ZOO_SCHEMA}'"
            ));
        }
        let default = doc
            .get("default")
            .and_then(Json::as_str)
            .ok_or("zoo manifest: missing 'default'")?
            .to_string();
        let models = doc
            .get("models")
            .and_then(Json::as_array)
            .ok_or("zoo manifest: missing 'models' array")?
            .iter()
            .map(ZooEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(default, models)
    }

    /// Reads and parses a manifest file, returning it along with the
    /// directory its relative artifact paths resolve against.
    ///
    /// # Errors
    ///
    /// Returns a message on read or parse failures.
    pub fn load(path: &Path) -> Result<(Self, PathBuf), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read zoo manifest {}: {e}", path.display()))?;
        let manifest = Self::from_json_str(&text)
            .map_err(|e| format!("zoo manifest {}: {e}", path.display()))?;
        let base = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .to_path_buf();
        Ok((manifest, base))
    }

    /// Writes the manifest as `zoo.json` into `dir`, returning the file
    /// path.
    ///
    /// # Errors
    ///
    /// Returns a message on write failures.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, String> {
        let path = dir.join("zoo.json");
        std::fs::write(&path, self.to_json_string())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, kind: &str, params: usize) -> ZooEntry {
        ZooEntry {
            name: name.into(),
            path: format!("{name}.pit2.json"),
            kind: kind.into(),
            seed: 7,
            lambda: 1e-3,
            params,
            receptive_field: 17,
            val_loss: 0.25,
            error_bound: if kind == "i8" { 0.01 } else { 0.0 },
            input_channels: 2,
            output_dim: 1,
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let manifest = ZooManifest::new(
            "small-i8",
            vec![entry("small-i8", "i8", 100), entry("big-f32", "f32", 900)],
        )
        .unwrap();
        let text = manifest.to_json_string();
        let back = ZooManifest::from_json_str(&text).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.get("big-f32").unwrap().params, 900);
        assert!(back.get("nope").is_none());
        assert_eq!(
            back.models[0].artifact_path(Path::new("/tmp/zoo")),
            Path::new("/tmp/zoo/small-i8.pit2.json")
        );
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(ZooManifest::from_json_str("not json").is_err());
        assert!(ZooManifest::from_json_str("{\"schema\": \"pit-zoo/9\"}").is_err());
        // Missing default / models.
        assert!(ZooManifest::from_json_str("{\"schema\": \"pit-zoo/1\"}").is_err());
        // Default naming no entry.
        let orphan = Json::Obj(vec![
            ("schema".into(), Json::Str(ZOO_SCHEMA.into())),
            ("default".into(), Json::Str("gone".into())),
            (
                "models".into(),
                Json::Arr(vec![entry("small-i8", "i8", 1).to_json()]),
            ),
        ]);
        assert!(ZooManifest::from_json_str(&orphan.render()).is_err());
        // Duplicate names.
        assert!(ZooManifest::new("a", vec![entry("a", "i8", 1), entry("a", "f32", 2)]).is_err());
        // Bad kind.
        let mut bad = entry("a", "i8", 1);
        bad.kind = "f16".into();
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str(ZOO_SCHEMA.into())),
            ("default".into(), Json::Str("a".into())),
            ("models".into(), Json::Arr(vec![bad.to_json()])),
        ]);
        assert!(ZooManifest::from_json_str(&doc.render()).is_err());
        // Empty model list.
        assert!(ZooManifest::new("a", vec![]).is_err());
    }

    #[test]
    fn save_and_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("pit-zoo-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = ZooManifest::new("m-i8", vec![entry("m-i8", "i8", 5)]).unwrap();
        let path = manifest.save(&dir).unwrap();
        let (back, base) = ZooManifest::load(&path).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(base, dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
