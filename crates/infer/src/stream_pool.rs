//! The precision-independent serving interface over batched session pools.
//!
//! [`SessionPool`] (f32) and [`QuantizedSessionPool`] (int8) expose the same
//! stream lifecycle — open, push, flush in batched waves, close — but as two
//! unrelated inherent APIs. A serving front end that supports both precisions
//! would otherwise have to duplicate every call site behind a hand-written
//! enum dispatch (the `pit-serve` daemon once carried 24 such match arms).
//! [`StreamPool`] is that seam as a trait: one generic batcher implementation
//! drives either engine through `Box<dyn StreamPool>`, and a new precision
//! (f16, sparse, …) plugs in by implementing seven methods.
//!
//! The contract every implementation upholds (and the pools' own test suites
//! pin):
//!
//! * stream ids are dense slot indices, recycled by `close_stream` — a
//!   long-running server's pool does not grow with stream churn;
//! * `push` queues one timestep (`input_channels` values); nothing executes
//!   until `flush`, which drains every queue in batched waves and returns
//!   `(stream_id, output)` pairs in emission order (chronological per
//!   stream);
//! * a freshly opened stream starts from the all-zero (causal padding)
//!   state, regardless of what the recycled slot computed before.

use crate::quant::QuantizedSessionPool;
use crate::session::SessionPool;

/// Precision-independent interface to a pool of batched streaming sessions.
///
/// See the [module docs](self) for the behavioural contract. All methods map
/// one-to-one onto the inherent APIs of [`SessionPool`] and
/// [`QuantizedSessionPool`]; the trait adds no behaviour of its own.
pub trait StreamPool: Send {
    /// Opens a stream with fresh (zero) state; returns its slot id.
    fn open_stream(&mut self) -> usize;

    /// Closes stream `sid`, dropping queued samples and recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range or already closed.
    fn close_stream(&mut self, sid: usize);

    /// Queues one input sample (length [`StreamPool::input_channels`]) for
    /// stream `sid`.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is not open or the sample length is wrong.
    fn push(&mut self, sid: usize, sample: &[f32]);

    /// Drains every queue in batched waves; returns emitted head outputs as
    /// `(stream_id, output)` in emission order.
    fn flush(&mut self) -> Vec<(usize, Vec<f32>)>;

    /// Queued-but-unflushed timesteps across all streams.
    fn pending_steps(&self) -> usize;

    /// Queued-but-unflushed timesteps of stream `sid`.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range.
    fn pending_for(&self, sid: usize) -> usize;

    /// Number of currently open streams (pool occupancy).
    fn open_streams(&self) -> usize;

    /// Whether slot `sid` currently belongs to a live stream.
    fn is_open(&self, sid: usize) -> bool;

    /// Input channels per timestep of the served plan.
    fn input_channels(&self) -> usize;

    /// Values per emitted head output of the served plan.
    fn output_dim(&self) -> usize;
}

impl StreamPool for SessionPool {
    fn open_stream(&mut self) -> usize {
        SessionPool::open_stream(self)
    }

    fn close_stream(&mut self, sid: usize) {
        SessionPool::close_stream(self, sid);
    }

    fn push(&mut self, sid: usize, sample: &[f32]) {
        SessionPool::push(self, sid, sample);
    }

    fn flush(&mut self) -> Vec<(usize, Vec<f32>)> {
        SessionPool::flush(self)
    }

    fn pending_steps(&self) -> usize {
        SessionPool::pending_steps(self)
    }

    fn pending_for(&self, sid: usize) -> usize {
        SessionPool::pending_for(self, sid)
    }

    fn open_streams(&self) -> usize {
        SessionPool::open_streams(self)
    }

    fn is_open(&self, sid: usize) -> bool {
        SessionPool::is_open(self, sid)
    }

    fn input_channels(&self) -> usize {
        self.plan().input_channels()
    }

    fn output_dim(&self) -> usize {
        self.plan().output_dim()
    }
}

impl StreamPool for QuantizedSessionPool {
    fn open_stream(&mut self) -> usize {
        QuantizedSessionPool::open_stream(self)
    }

    fn close_stream(&mut self, sid: usize) {
        QuantizedSessionPool::close_stream(self, sid);
    }

    fn push(&mut self, sid: usize, sample: &[f32]) {
        QuantizedSessionPool::push(self, sid, sample);
    }

    fn flush(&mut self) -> Vec<(usize, Vec<f32>)> {
        QuantizedSessionPool::flush(self)
    }

    fn pending_steps(&self) -> usize {
        QuantizedSessionPool::pending_steps(self)
    }

    fn pending_for(&self, sid: usize) -> usize {
        QuantizedSessionPool::pending_for(self, sid)
    }

    fn open_streams(&self) -> usize {
        QuantizedSessionPool::open_streams(self)
    }

    fn is_open(&self, sid: usize) -> bool {
        QuantizedSessionPool::is_open(self, sid)
    }

    fn input_channels(&self) -> usize {
        self.plan().input_channels()
    }

    fn output_dim(&self) -> usize {
        self.plan().output_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile_generic;
    use crate::quant::QuantizedPlan;
    use pit_models::{GenericTcn, GenericTcnConfig};
    use pit_nas::SearchableNetwork;
    use pit_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// One generic driver, two engines: the point of the trait.
    fn lifecycle_through_trait(mut pool: Box<dyn StreamPool>) {
        assert_eq!(pool.input_channels(), 1);
        assert_eq!(pool.output_dim(), 1);
        let a = pool.open_stream();
        let b = pool.open_stream();
        assert_eq!(pool.open_streams(), 2);
        pool.push(a, &[0.25]);
        pool.push(a, &[-0.5]);
        pool.push(b, &[1.0]);
        assert_eq!(pool.pending_steps(), 3);
        assert_eq!(pool.pending_for(a), 2);
        let outs = pool.flush();
        assert_eq!(outs.iter().filter(|(sid, _)| *sid == a).count(), 2);
        assert_eq!(outs.iter().filter(|(sid, _)| *sid == b).count(), 1);
        assert_eq!(pool.pending_steps(), 0);
        pool.close_stream(a);
        assert!(!pool.is_open(a));
        assert!(pool.is_open(b));
        // The recycled slot starts from zero state: same input, same output
        // as the fresh stream `b` got.
        let c = pool.open_stream();
        assert_eq!(c, a, "slot must be recycled");
        pool.push(c, &[1.0]);
        let outs2 = pool.flush();
        let fresh = outs2.iter().find(|(sid, _)| *sid == c).expect("c emits");
        let b_first = outs.iter().find(|(sid, _)| *sid == b).expect("b emitted");
        assert_eq!(fresh.1, b_first.1, "recycled slot must start from zero");
    }

    #[test]
    fn both_engines_serve_through_the_trait_object() {
        let mut rng = StdRng::seed_from_u64(40);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        net.set_dilations(&[2, 4]);
        let plan = Arc::new(compile_generic(&net));
        let x = init::uniform(&mut rng, &[1, 1, 32], 1.0);
        let qplan = Arc::new(
            QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("plan quantizes"),
        );
        lifecycle_through_trait(Box::new(SessionPool::new(Arc::clone(&plan), 0)));
        lifecycle_through_trait(Box::new(QuantizedSessionPool::new(qplan, 0)));
    }
}
