//! Int8 quantized serving: calibrate → quantize → stream.
//!
//! This module is the deployment contract of the PIT story (Risso et al.,
//! DAC 2021 target int8 execution on GAP8-class edge devices): it lowers a
//! compiled f32 [`InferencePlan`] into an int8 [`QuantizedPlan`] and executes
//! it statefully with the same streaming semantics as the f32 engine —
//! identical emission schedule, `i8` ring buffers (4x smaller per-stream
//! state) and exact `i8×i8→i32` arithmetic (input-major accumulation per
//! step, [`pit_tensor::kernels::gemm_i8`] per batched wave). Integer
//! accumulators carry no ordering constraint, so the hot loops vectorize
//! where the f32 engine's serial dot products cannot — that, not just the
//! 4x data width, is where the step-time win comes from.
//!
//! **Scheme.** Weights are quantized symmetrically *per output channel*
//! ([`pit_hw::quant::quantize_per_channel`]); activations are quantized *per
//! layer seam* with one scale from a max-abs calibration pass
//! ([`Calibration::collect`] drives [`InferencePlan::forward_seams`]).
//! Execution keeps f32 columns *between* layers: each layer quantizes its
//! input column at the seam, accumulates exactly in `i32`, and dequantizes
//! through `in_scale · w_scale[co]` plus the f32 bias (batch norm was already
//! folded by the f32 compile). Biases, pooling windows and the global-pool
//! running mean stay f32 — they are tiny next to the conv rings.
//!
//! **Parity bound.** Integer accumulation is exact, so the only error
//! sources are the rounding at the seams (≤ `in_scale/2` per element, also
//! valid under saturation for inputs inside the calibrated range) and the
//! weight rounding (`Σ|ŵ−w|` per output channel, known exactly after
//! quantization). [`QuantizedPlan::error_bound`] composes these through the
//! network — `Σ|ŵ|` is each layer's Lipschitz factor, ReLU and average
//! pooling are 1-Lipschitz, residual branches add — into an analytic bound
//! on `|quantized − f32|` per output, **valid for any input whose seam
//! activations stay inside the calibrated ranges** (in particular, for the
//! calibration inputs themselves). The property tests in
//! `tests/quant_parity.rs` hold the streamed int8 outputs to this bound.

use crate::plan::{CompiledConv, Dense, InferencePlan, PlanBlock, PlanHead, PoolSpec};
use crate::stream::{relu_in_place, PoolClock};
use pit_hw::quant::{quantize_per_channel, quantize_value_inv, symmetric_scale, MaxAbsObserver};
use pit_tensor::kernels::gemm_i8;
use pit_tensor::{Result, Tensor};
use std::collections::VecDeque;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

/// Max-abs activation ranges, one per quantization seam of a plan (the seam
/// order of [`InferencePlan::forward_seams`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    max_abs: Vec<f32>,
}

impl Calibration {
    /// Runs every calibration window through the f32 plan and records the
    /// max-abs activation at each quantization seam.
    ///
    /// The resulting [`QuantizedPlan::error_bound`] is sound for inputs
    /// whose seam activations stay inside these ranges — calibrate on data
    /// drawn from the serving distribution (or, for a parity check, on the
    /// exact windows being compared).
    ///
    /// # Errors
    ///
    /// Returns an error when no calibration windows are given (all-zero
    /// ranges would quantize every activation onto the `{-1, 0, 1}` codes —
    /// a silently destroyed model), or when a window does not match the
    /// plan's input shape.
    pub fn collect(plan: &InferencePlan, windows: &[Tensor]) -> Result<Self> {
        if windows.is_empty() {
            return Err(pit_tensor::TensorError::InvalidArgument {
                op: "calibrate",
                message: "calibration needs at least one window".into(),
            });
        }
        let mut observers = vec![MaxAbsObserver::new(); plan.num_seams()];
        // An Fc head emits on *every* streamed step from a zero-padded
        // flatten ring, so its hidden activations are not offline
        // activations: a mid-fill window can excite a hidden unit far beyond
        // anything the aligned full-window forward produces (cancelling
        // terms drop out with the padding). Capture the pooled feature map
        // at the flatten seam and walk every ring position the stream will
        // see, folding those hidden activations into the output seam's
        // range — without this the error bound is unsound before (and
        // between) window-aligned emissions. Every other seam is covered by
        // streaming ≡ offline parity of the conv/pool stack (zero state ≡
        // causal pad) or, for the global-pool head, by the pre-pool
        // observation dominating every prefix mean.
        let fc_flat_seam = match plan.head() {
            PlanHead::Fc { .. } => Some(plan.num_seams() - 2),
            _ => None,
        };
        let mut pooled_maps: Vec<Tensor> = Vec::new();
        for window in windows {
            plan.forward_seams(window, &mut |seam, t| {
                observers[seam].observe(t);
                if Some(seam) == fc_flat_seam {
                    pooled_maps.push(t.clone());
                }
            })?;
        }
        if let PlanHead::Fc {
            hidden,
            channels,
            window,
            ..
        } = plan.head()
        {
            let hidden_seam = plan.num_seams() - 1;
            let (c, w) = (*channels, *window);
            let wm = hidden.weight.data();
            let out_f = hidden.out_features;
            let mut flat = vec![0.0f32; c * w];
            for map in &pooled_maps {
                let (n, t) = (map.dims()[0], map.dims()[2]);
                for bn in 0..n {
                    for s in 0..t {
                        // The streamed flatten at pooled step `s`: the last
                        // `w` pooled columns, zero-padded before step 0,
                        // oldest first (ring gather order).
                        for ci in 0..c {
                            for j in 0..w {
                                let idx = s as isize + 1 - w as isize + j as isize;
                                flat[ci * w + j] = if idx < 0 {
                                    0.0
                                } else {
                                    map.data()[(bn * c + ci) * t + idx as usize]
                                };
                            }
                        }
                        for o in 0..out_f {
                            let mut acc = hidden.bias.data()[o];
                            for (i, &f) in flat.iter().enumerate() {
                                acc += f * wm[i * out_f + o];
                            }
                            observers[hidden_seam].observe_slice(&[acc.max(0.0)]);
                        }
                    }
                }
            }
        }
        Ok(Self {
            max_abs: observers.iter().map(MaxAbsObserver::max_abs).collect(),
        })
    }

    /// Number of seams recorded.
    pub fn len(&self) -> usize {
        self.max_abs.len()
    }

    /// Returns `true` when no seams were recorded.
    pub fn is_empty(&self) -> bool {
        self.max_abs.is_empty()
    }

    /// Max-abs range observed at seam `i`.
    pub fn seam_max_abs(&self, i: usize) -> f32 {
        self.max_abs[i]
    }
}

// ---------------------------------------------------------------------------
// Quantized layers
// ---------------------------------------------------------------------------

/// An int8 convolution: per-output-channel weight scales, one activation
/// scale at the input seam, exact `i32` accumulation, f32 bias.
#[derive(Debug, Clone)]
pub struct QuantizedConv {
    pub(crate) c_in: usize,
    pub(crate) c_out: usize,
    pub(crate) k: usize,
    pub(crate) dilation: usize,
    /// Execution pack `[(tap, channel), C_out]` (`j = kk·C_in + ci` rows):
    /// both the per-step input-major accumulation and the batched wave GEMM
    /// read this, matching the tap-major gather rows.
    pub(crate) wt_q: Vec<i8>,
    /// Input activation scale (from calibration).
    pub(crate) in_scale: f32,
    /// Reciprocal of `in_scale` — the seam quantizes with one multiply.
    pub(crate) inv_in_scale: f32,
    /// Calibrated max-abs of the layer's (f32 reference) input.
    pub(crate) in_max: f32,
    /// Bias `[C_out]`, applied in f32 after dequantization.
    pub(crate) bias: Vec<f32>,
    /// Per-output-channel weight scales (kept verbatim so artifact round
    /// trips are bit-stable; `deq` is the product with `in_scale`).
    pub(crate) w_scales: Vec<f32>,
    /// Dequantization factor per output channel: `in_scale · w_scale[co]`.
    pub(crate) deq: Vec<f32>,
    /// `Σ_j |ŵ[co, j]|` over dequantized weights — the per-channel Lipschitz
    /// factor of the error-bound recursion.
    pub(crate) l1q: Vec<f32>,
    /// `Σ_j |ŵ[co, j] − w[co, j]|` — the exact weight-rounding mass.
    pub(crate) dw_l1: Vec<f32>,
}

impl QuantizedConv {
    /// Quantizes a compiled (mask-folded, BN-folded) convolution given the
    /// calibrated max-abs of its input activations.
    pub fn from_compiled(conv: &CompiledConv, in_max: f32) -> Self {
        let (c_in, c_out, k) = (conv.in_channels(), conv.out_channels(), conv.kernel());
        let ck = c_in * k;
        let q = quantize_per_channel(&conv.weight);
        let mut dw_l1 = vec![0.0f32; c_out];
        for co in 0..c_out {
            let scale = q.scales[co];
            for j in 0..ck {
                let wv = f32::from(q.data[co * ck + j]) * scale;
                dw_l1[co] += (wv - conv.weight.data()[co * ck + j]).abs();
            }
        }
        Self::from_quantized_parts(
            c_in,
            c_out,
            k,
            conv.dilation(),
            &q.data,
            q.scales,
            in_max,
            conv.bias.data().to_vec(),
            dw_l1,
        )
    }

    /// Rebuilds a quantized convolution from its canonical serialized parts:
    /// codes `wq` in `[C_out, C_in, K]` order, per-output-channel `scales`,
    /// the calibrated input max-abs, the f32 bias and the weight-rounding
    /// mass `dw_l1` (which cannot be recomputed without the original f32
    /// weights). The execution pack and the derived bound factors are
    /// reconstructed, bit-identically to [`QuantizedConv::from_compiled`].
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the geometry; the artifact
    /// parser validates lengths before calling this.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_quantized_parts(
        c_in: usize,
        c_out: usize,
        k: usize,
        dilation: usize,
        wq: &[i8],
        scales: Vec<f32>,
        in_max: f32,
        bias: Vec<f32>,
        dw_l1: Vec<f32>,
    ) -> Self {
        let ck = c_in * k;
        assert_eq!(wq.len(), ck * c_out, "quantized weight length");
        assert_eq!(scales.len(), c_out, "scale count");
        assert_eq!(bias.len(), c_out, "bias length");
        assert_eq!(dw_l1.len(), c_out, "dw_l1 length");
        let in_scale = symmetric_scale(in_max);
        // Transposed pack in *(tap, channel)* order: gather row `j` is
        // `(kk, ci)` with `j = kk·C_in + ci`, so a streaming gather is one
        // contiguous column copy per tap (see `QConvState`).
        let mut wt_q = vec![0i8; ck * c_out];
        for co in 0..c_out {
            for ci in 0..c_in {
                for kk in 0..k {
                    wt_q[(kk * c_in + ci) * c_out + co] = wq[co * ck + ci * k + kk];
                }
            }
        }
        let mut l1q = vec![0.0f32; c_out];
        for co in 0..c_out {
            let scale = scales[co];
            for j in 0..ck {
                l1q[co] += (f32::from(wq[co * ck + j]) * scale).abs();
            }
        }
        Self {
            c_in,
            c_out,
            k,
            dilation,
            wt_q,
            in_scale,
            inv_in_scale: 1.0 / in_scale,
            in_max,
            bias,
            deq: scales.iter().map(|&s| s * in_scale).collect(),
            w_scales: scales,
            l1q,
            dw_l1,
        }
    }

    /// The quantized codes back in canonical `[C_out, C_in, K]` order (the
    /// inverse of the execution pack) — the artifact serialization layout.
    pub(crate) fn canonical_wq(&self) -> Vec<i8> {
        let ck = self.c_in * self.k;
        let mut wq = vec![0i8; ck * self.c_out];
        for co in 0..self.c_out {
            for ci in 0..self.c_in {
                for kk in 0..self.k {
                    wq[co * ck + ci * self.k + kk] =
                        self.wt_q[(kk * self.c_in + ci) * self.c_out + co];
                }
            }
        }
        wq
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.c_in
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.c_out
    }

    /// Stored (alive) taps.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Dilation between stored taps.
    pub fn dilation(&self) -> usize {
        self.dilation
    }

    /// Receptive field in input samples — the `i8` ring length per stream.
    pub fn receptive_field(&self) -> usize {
        (self.k - 1) * self.dilation + 1
    }

    /// One step of the error-bound recursion: the worst-case output error
    /// when the layer's input carries error at most `e_in` against an f32
    /// reference whose activations stay within the calibrated range.
    fn bound(&self, e_in: f32) -> f32 {
        rounding_bound(&self.l1q, &self.dw_l1, self.in_scale, self.in_max, e_in)
    }
}

/// The per-layer error-bound step shared by conv and dense layers. Per
/// output channel: `Σ|ŵ| · (e_in + in_scale/2) + Σ|ŵ−w| · in_max` (input
/// rounding through the quantized weights, plus weight rounding against the
/// bounded reference input); the bound is the channel max.
fn rounding_bound(l1q: &[f32], dw_l1: &[f32], in_scale: f32, in_max: f32, e_in: f32) -> f32 {
    let q_in = 0.5 * in_scale;
    l1q.iter()
        .zip(dw_l1.iter())
        .map(|(&l1, &dw)| l1 * (e_in + q_in) + dw * in_max)
        .fold(0.0f32, f32::max)
}

/// An int8 dense layer `y = x · W + b`: per-output-feature weight scales,
/// one activation scale at the input seam.
#[derive(Debug, Clone)]
pub struct QuantizedDense {
    pub(crate) in_features: usize,
    pub(crate) out_features: usize,
    /// Quantized weights `[in, out]` (the wave-GEMM operand, matching the
    /// f32 [`Dense`] layout; also the per-step operand — the solo path
    /// accumulates input-major so ReLU zeros skip whole rows).
    pub(crate) wq_cols: Vec<i8>,
    pub(crate) in_scale: f32,
    pub(crate) inv_in_scale: f32,
    pub(crate) in_max: f32,
    pub(crate) bias: Vec<f32>,
    /// Per-output-feature weight scales (kept verbatim so artifact round
    /// trips are bit-stable; `deq` is the product with `in_scale`).
    pub(crate) w_scales: Vec<f32>,
    /// `in_scale · w_scale[o]` per output feature.
    pub(crate) deq: Vec<f32>,
    pub(crate) l1q: Vec<f32>,
    pub(crate) dw_l1: Vec<f32>,
}

impl QuantizedDense {
    /// Quantizes a compiled dense layer given the calibrated max-abs of its
    /// input activations.
    pub fn from_dense(dense: &Dense, in_max: f32) -> Self {
        let (in_f, out_f) = (dense.in_features(), dense.out_features());
        // Transpose to [out, in] so per-channel quantization scales each
        // output feature independently.
        let mut wt = vec![0.0f32; out_f * in_f];
        for i in 0..in_f {
            for o in 0..out_f {
                wt[o * in_f + i] = dense.weight.data()[i * out_f + o];
            }
        }
        let q = quantize_per_channel(
            &Tensor::from_vec(wt.clone(), &[out_f, in_f]).expect("transposed weight shape"),
        );
        let mut dw_l1 = vec![0.0f32; out_f];
        for o in 0..out_f {
            let scale = q.scales[o];
            for i in 0..in_f {
                let wv = f32::from(q.data[o * in_f + i]) * scale;
                dw_l1[o] += (wv - wt[o * in_f + i]).abs();
            }
        }
        Self::from_quantized_parts(
            in_f,
            out_f,
            &q.data,
            q.scales,
            in_max,
            dense.bias.data().to_vec(),
            dw_l1,
        )
    }

    /// Rebuilds a quantized dense layer from its canonical serialized parts:
    /// codes `wq` in `[out, in]` order (the per-channel quantization
    /// layout), per-output-feature `scales`, the calibrated input max-abs,
    /// the f32 bias and the weight-rounding mass `dw_l1`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the geometry; the artifact
    /// parser validates lengths before calling this.
    pub(crate) fn from_quantized_parts(
        in_f: usize,
        out_f: usize,
        wq: &[i8],
        scales: Vec<f32>,
        in_max: f32,
        bias: Vec<f32>,
        dw_l1: Vec<f32>,
    ) -> Self {
        assert_eq!(wq.len(), in_f * out_f, "quantized weight length");
        assert_eq!(scales.len(), out_f, "scale count");
        assert_eq!(bias.len(), out_f, "bias length");
        assert_eq!(dw_l1.len(), out_f, "dw_l1 length");
        let in_scale = symmetric_scale(in_max);
        let mut wq_cols = vec![0i8; in_f * out_f];
        for o in 0..out_f {
            for i in 0..in_f {
                wq_cols[i * out_f + o] = wq[o * in_f + i];
            }
        }
        let mut l1q = vec![0.0f32; out_f];
        for o in 0..out_f {
            let scale = scales[o];
            for i in 0..in_f {
                l1q[o] += (f32::from(wq[o * in_f + i]) * scale).abs();
            }
        }
        Self {
            in_features: in_f,
            out_features: out_f,
            wq_cols,
            in_scale,
            inv_in_scale: 1.0 / in_scale,
            in_max,
            bias,
            deq: scales.iter().map(|&s| s * in_scale).collect(),
            w_scales: scales,
            l1q,
            dw_l1,
        }
    }

    /// The quantized codes back in canonical `[out, in]` order — the
    /// artifact serialization layout.
    pub(crate) fn canonical_wq(&self) -> Vec<i8> {
        let (in_f, out_f) = (self.in_features, self.out_features);
        let mut wq = vec![0i8; in_f * out_f];
        for o in 0..out_f {
            for i in 0..in_f {
                wq[o * in_f + i] = self.wq_cols[i * out_f + o];
            }
        }
        wq
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Dense analogue of [`QuantizedConv::bound`].
    fn bound(&self, e_in: f32) -> f32 {
        rounding_bound(&self.l1q, &self.dw_l1, self.in_scale, self.in_max, e_in)
    }

    /// Quantizes `input` at the seam and applies the layer per step,
    /// input-major over the `[in, out]` pack: integer accumulation in `acc`,
    /// dequantize + bias (+ ReLU) into `out`.
    fn forward_q(
        &self,
        input: &[f32],
        qbuf: &mut [i8],
        acc: &mut [i32],
        out: &mut [f32],
        relu: bool,
    ) {
        let (in_f, out_f) = (self.in_features, self.out_features);
        for (q, &v) in qbuf.iter_mut().take(in_f).zip(input.iter()) {
            *q = quantize_value_inv(v, self.inv_in_scale);
        }
        accumulate_rows(&self.wq_cols, &qbuf[..in_f], out_f, acc);
        for o in 0..out_f {
            out[o] = acc[o] as f32 * self.deq[o] + self.bias[o];
        }
        if relu {
            relu_in_place(&mut out[..out_f]);
        }
    }
}

/// `acc[o] = Σ_j x[j] · w[j·out_f + o]` — the input-major `i8·i8→i32`
/// microkernel of the solo streaming path. Integer accumulators carry no
/// ordering constraint (the f32 twin's serial dot cannot be reordered), so
/// register-blocking the output lane into fixed-width accumulator arrays
/// lets the whole reduction vectorize with no per-row loop-bound checks —
/// the runtime-width form of this loop measured *slower* than the f32 dot.
fn accumulate_rows(wq: &[i8], x: &[i8], out_f: usize, acc: &mut [i32]) {
    let mut col = 0;
    while col + 16 <= out_f {
        accumulate_block::<16>(wq, x, out_f, col, acc);
        col += 16;
    }
    if col + 8 <= out_f {
        accumulate_block::<8>(wq, x, out_f, col, acc);
        col += 8;
    }
    if col + 4 <= out_f {
        accumulate_block::<4>(wq, x, out_f, col, acc);
        col += 4;
    }
    while col < out_f {
        accumulate_block::<1>(wq, x, out_f, col, acc);
        col += 1;
    }
}

/// Computes output lanes `col..col + R` across every input row, holding the
/// `R` partial sums in a fixed-size (register-resident) array. Lane blocks
/// cover disjoint column ranges, so the writeback assigns — no pre-zeroing
/// pass over `acc`.
fn accumulate_block<const R: usize>(
    wq: &[i8],
    x: &[i8],
    out_f: usize,
    col: usize,
    acc: &mut [i32],
) {
    let mut a = [0i32; R];
    for (j, &xq) in x.iter().enumerate() {
        let xv = i32::from(xq);
        let wrow: &[i8; R] = wq[j * out_f + col..j * out_f + col + R]
            .try_into()
            .expect("lane block");
        for l in 0..R {
            a[l] += xv * i32::from(wrow[l]);
        }
    }
    acc[col..col + R].copy_from_slice(&a);
}

// ---------------------------------------------------------------------------
// Quantized plan
// ---------------------------------------------------------------------------

/// A quantized average-pooling stage: the window ring is stored as `i8` at
/// its own calibrated seam scale (pooling is linear, so the mean of the
/// quantized columns dequantizes in one multiply), keeping *all* per-stream
/// ring state one byte per slot.
#[derive(Debug, Clone)]
pub struct QuantPool {
    /// Pooling geometry.
    pub(crate) spec: PoolSpec,
    /// Calibrated max-abs of the window's (f32 reference) input, kept
    /// verbatim so artifact round trips are bit-stable.
    pub(crate) in_max: f32,
    /// Input activation scale (from calibration).
    pub(crate) in_scale: f32,
    /// Reciprocal of `in_scale` — the seam quantizes with one multiply.
    pub(crate) inv_in_scale: f32,
    /// Dequantization of the window mean: `in_scale / kernel`.
    pub(crate) deq: f32,
}

impl QuantPool {
    pub(crate) fn new(spec: PoolSpec, in_max: f32) -> Self {
        let in_scale = symmetric_scale(in_max);
        Self {
            spec,
            in_max,
            in_scale,
            inv_in_scale: 1.0 / in_scale,
            deq: in_scale / spec.kernel as f32,
        }
    }
}

/// One block of a quantized plan, mirroring [`PlanBlock`].
// Mirrors the f32 plan's variant size trade-off (see `PlanBlock`): built
// once per quantization, never moved on a hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum QuantBlock {
    /// Two int8 convolutions with a skip connection; the skip adds in f32
    /// before the block's final ReLU.
    Residual {
        /// First convolution.
        conv1: QuantizedConv,
        /// Second convolution.
        conv2: QuantizedConv,
        /// Optional 1×1 projection on the skip path.
        downsample: Option<QuantizedConv>,
    },
    /// A feed-forward chain of int8 convolutions, optionally closed by
    /// int8-windowed average pooling over time.
    Plain {
        /// Convolutions, each followed by an implicit ReLU.
        convs: Vec<QuantizedConv>,
        /// Optional pooling stage closing the block.
        pool: Option<QuantPool>,
    },
}

/// The output head of a quantized plan, mirroring [`PlanHead`].
#[derive(Debug, Clone)]
pub enum QuantHead {
    /// Per-time-step int8 output convolution.
    PerStep(QuantizedConv),
    /// Flatten window + two int8 dense layers (TEMPONet-style).
    Fc {
        /// Hidden dense layer (ReLU after it).
        hidden: QuantizedDense,
        /// Output dense layer (linear).
        output: QuantizedDense,
        /// Channels of the feature map feeding the head.
        channels: usize,
        /// Time steps flattened into the head input.
        window: usize,
    },
    /// Global average pooling (f32 running mean) + one int8 dense layer.
    GlobalPoolFc(QuantizedDense),
}

/// The int8 form of an [`InferencePlan`]: same structure, same streaming
/// semantics, `i8` weights and ring buffers, and an analytic parity bound
/// against the f32 plan it was lowered from.
#[derive(Debug, Clone)]
pub struct QuantizedPlan {
    pub(crate) name: String,
    pub(crate) input_channels: usize,
    pub(crate) blocks: Vec<QuantBlock>,
    pub(crate) head: QuantHead,
    pub(crate) output_dim: usize,
    pub(crate) error_bound: f32,
}

/// Composes the analytic error bound of a quantized plan from its layers —
/// the recursion described in the module docs: each conv/dense layer maps an
/// incoming error `e` through [`rounding_bound`], residual branches add,
/// average pooling is 1-Lipschitz plus half a step of its own seam scale.
/// One function serves both [`QuantizedPlan::new`] and the artifact loader,
/// so a plan and its deserialized twin carry the same bound.
fn compose_error_bound(blocks: &[QuantBlock], head: &QuantHead) -> f32 {
    let mut e = 0.0f32;
    for block in blocks {
        match block {
            QuantBlock::Residual {
                conv1,
                conv2,
                downsample,
            } => {
                let e_branch = conv2.bound(conv1.bound(e));
                let e_skip = downsample.as_ref().map(|d| d.bound(e)).unwrap_or(e);
                e = e_branch + e_skip;
            }
            QuantBlock::Plain { convs, pool } => {
                for conv in convs {
                    e = conv.bound(e);
                }
                // Averaging is 1-Lipschitz; quantizing the pool window adds
                // one half-step of its seam scale to the bound.
                if let Some(qp) = pool {
                    e += 0.5 * qp.in_scale;
                }
            }
        }
    }
    match head {
        QuantHead::PerStep(conv) => conv.bound(e),
        QuantHead::Fc { hidden, output, .. } => output.bound(hidden.bound(e)),
        // The f32 running mean is 1-Lipschitz; the dense seam was calibrated
        // pre-pool, which dominates every prefix mean.
        QuantHead::GlobalPoolFc(dense) => dense.bound(e),
    }
}

impl QuantizedPlan {
    /// Assembles a quantized plan from already-built parts, deriving the
    /// output width and the composed error bound. Geometry invariants
    /// (channel chaining) are the caller's responsibility — the public
    /// constructors ([`QuantizedPlan::new`], the artifact loader) establish
    /// them before calling this.
    pub(crate) fn assemble(
        name: String,
        input_channels: usize,
        blocks: Vec<QuantBlock>,
        head: QuantHead,
    ) -> Self {
        let output_dim = match &head {
            QuantHead::PerStep(conv) => conv.c_out,
            QuantHead::Fc { output, .. } => output.out_features,
            QuantHead::GlobalPoolFc(dense) => dense.out_features,
        };
        let error_bound = compose_error_bound(&blocks, &head);
        Self {
            name,
            input_channels,
            blocks,
            head,
            output_dim,
            error_bound,
        }
    }
    /// Lowers an f32 plan into int8 using a previously collected
    /// [`Calibration`].
    ///
    /// # Errors
    ///
    /// Returns a message when the calibration's seam count does not match
    /// the plan (it was collected for a different plan).
    pub fn new(plan: &InferencePlan, cal: &Calibration) -> std::result::Result<Self, String> {
        if cal.len() != plan.num_seams() {
            return Err(format!(
                "calibration covers {} seams but the plan has {}",
                cal.len(),
                plan.num_seams()
            ));
        }
        let mut seam = 0usize;
        let mut next = || {
            let m = cal.seam_max_abs(seam);
            seam += 1;
            m
        };
        let mut blocks = Vec::with_capacity(plan.blocks().len());
        for block in plan.blocks() {
            match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    let q1 = QuantizedConv::from_compiled(conv1, next());
                    let q2 = QuantizedConv::from_compiled(conv2, next());
                    let qd = downsample
                        .as_ref()
                        .map(|ds| QuantizedConv::from_compiled(ds, next()));
                    blocks.push(QuantBlock::Residual {
                        conv1: q1,
                        conv2: q2,
                        downsample: qd,
                    });
                }
                PlanBlock::Plain { convs, pool } => {
                    let qconvs = convs
                        .iter()
                        .map(|conv| QuantizedConv::from_compiled(conv, next()))
                        .collect();
                    blocks.push(QuantBlock::Plain {
                        convs: qconvs,
                        pool: pool.map(|spec| QuantPool::new(spec, next())),
                    });
                }
            }
        }
        let head = match plan.head() {
            PlanHead::PerStep(conv) => {
                QuantHead::PerStep(QuantizedConv::from_compiled(conv, next()))
            }
            PlanHead::Fc {
                hidden,
                output,
                channels,
                window,
            } => QuantHead::Fc {
                hidden: QuantizedDense::from_dense(hidden, next()),
                output: QuantizedDense::from_dense(output, next()),
                channels: *channels,
                window: *window,
            },
            PlanHead::GlobalPoolFc(dense) => {
                QuantHead::GlobalPoolFc(QuantizedDense::from_dense(dense, next()))
            }
        };
        Ok(Self::assemble(
            format!("{}-int8", plan.name()),
            plan.input_channels(),
            blocks,
            head,
        ))
    }

    /// Calibrates on `windows` and lowers in one call.
    ///
    /// # Errors
    ///
    /// Returns a message when a window does not match the plan's input
    /// shape.
    pub fn quantize(plan: &InferencePlan, windows: &[Tensor]) -> std::result::Result<Self, String> {
        let cal = Calibration::collect(plan, windows).map_err(|e| e.to_string())?;
        Self::new(plan, &cal)
    }

    /// The plan name (`<f32 name>-int8`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Channels of the input stream.
    pub fn input_channels(&self) -> usize {
        self.input_channels
    }

    /// The quantized blocks in execution order.
    pub fn blocks(&self) -> &[QuantBlock] {
        &self.blocks
    }

    /// The quantized head.
    pub fn head(&self) -> &QuantHead {
        &self.head
    }

    /// Width of one emitted output vector.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Analytic worst-case `|int8 − f32|` per output value, for inputs whose
    /// seam activations stay inside the calibrated ranges. Integer
    /// accumulation is exact, so this composes only the seam rounding
    /// (`in_scale/2`) and the measured weight-rounding mass through each
    /// layer's `Σ|ŵ|` Lipschitz factor (see the module docs for the
    /// derivation).
    pub fn error_bound(&self) -> f32 {
        self.error_bound
    }

    /// Bytes of weight payload the int8 plan ships: one byte per weight plus
    /// four per scale and per f32 bias entry.
    pub fn weight_bytes(&self) -> usize {
        let conv = |c: &QuantizedConv| c.wt_q.len() + 4 * (c.deq.len() + c.bias.len());
        let dense = |d: &QuantizedDense| d.wq_cols.len() + 4 * (d.deq.len() + d.bias.len());
        let mut total = 0usize;
        for block in &self.blocks {
            match block {
                QuantBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    total += conv(conv1) + conv(conv2);
                    if let Some(ds) = downsample {
                        total += conv(ds);
                    }
                }
                QuantBlock::Plain { convs, .. } => total += convs.iter().map(&conv).sum::<usize>(),
            }
        }
        total
            + match &self.head {
                QuantHead::PerStep(c) => conv(c),
                QuantHead::Fc { hidden, output, .. } => dense(hidden) + dense(output),
                QuantHead::GlobalPoolFc(d) => dense(d),
            }
    }

    /// Bytes one streaming [`QuantizedSession`] keeps as state: `i8` conv
    /// rings, pooling windows and flatten windows (one byte per slot); only
    /// the global-pool running mean stays f32 (four bytes per slot). Compare
    /// with `4 · InferencePlan::session_state_floats()` for the f32 engine —
    /// the ratio approaches 4x.
    pub fn session_state_bytes(&self) -> usize {
        let ring = |c: &QuantizedConv| c.c_in * c.receptive_field();
        let mut total = 0usize;
        for block in &self.blocks {
            match block {
                QuantBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    total += ring(conv1) + ring(conv2);
                    if let Some(ds) = downsample {
                        total += ring(ds);
                    }
                }
                QuantBlock::Plain { convs, pool } => {
                    total += convs.iter().map(&ring).sum::<usize>();
                    if let (Some(qp), Some(last)) = (pool, convs.last()) {
                        total += last.c_out * qp.spec.kernel;
                    }
                }
            }
        }
        total
            + match &self.head {
                QuantHead::PerStep(c) => ring(c),
                QuantHead::Fc {
                    channels, window, ..
                } => channels * window,
                QuantHead::GlobalPoolFc(d) => 4 * d.in_features,
            }
    }
}

/// Widest column / gather row / quantize buffer any layer of the plan needs.
fn scratch_widths_q(plan: &QuantizedPlan) -> (usize, usize) {
    let mut width = plan.input_channels.max(plan.output_dim);
    let mut row = 1;
    let mut visit = |c: &QuantizedConv| {
        width = width.max(c.c_in).max(c.c_out);
        row = row.max(c.c_in * c.k);
    };
    for block in &plan.blocks {
        match block {
            QuantBlock::Residual {
                conv1,
                conv2,
                downsample,
            } => {
                visit(conv1);
                visit(conv2);
                if let Some(ds) = downsample {
                    visit(ds);
                }
            }
            QuantBlock::Plain { convs, .. } => convs.iter().for_each(&mut visit),
        }
    }
    if let QuantHead::PerStep(conv) = &plan.head {
        visit(conv);
    }
    (width, row)
}

// ---------------------------------------------------------------------------
// Streaming state
// ---------------------------------------------------------------------------

/// Ring buffer holding one quantized convolution's receptive field of `i8`
/// input history — four times smaller than the f32 ring it replaces.
///
/// Laid out *time-major* (`[rf, C_in]`, one contiguous column per row),
/// unlike the f32 engine's channel-major ring: a push is then one
/// unit-stride quantize pass and a gather is one `memcpy` per alive tap —
/// no strided element loops anywhere on the step path.
#[derive(Debug, Clone)]
struct QConvState {
    /// `[rf, C_in]` ring; row `pos` is the next write slot.
    hist: Vec<i8>,
    rf: usize,
    pos: usize,
}

/// Over-allocation past the live ring/row bytes, letting gathers run as
/// fixed 16-byte copies (compiled to plain loads/stores) instead of
/// variable-length `memcpy` calls for the narrow columns PIT networks have.
const COPY_PAD: usize = 16;

impl QConvState {
    fn new(conv: &QuantizedConv) -> Self {
        let rf = conv.receptive_field();
        Self {
            hist: vec![0; conv.c_in * rf + COPY_PAD],
            rf,
            pos: 0,
        }
    }

    fn reset(&mut self) {
        self.hist.fill(0);
        self.pos = 0;
    }

    /// Quantizes one f32 column at the layer seam straight into the ring —
    /// one unit-stride multiply-round pass, no intermediate buffer.
    fn push_quantized(&mut self, input: &[f32], inv_scale: f32, c_in: usize) {
        let base = self.pos * c_in;
        for (h, &v) in self.hist[base..base + c_in].iter_mut().zip(input.iter()) {
            *h = quantize_value_inv(v, inv_scale);
        }
        self.pos += 1;
        if self.pos == self.rf {
            self.pos = 0;
        }
    }

    /// Gathers the current tap window into `row` (`[K, C_in]` — tap-major,
    /// matching the `wt_q` pack): one contiguous column copy per alive tap.
    /// Tap shifts never exceed `rf − 1`, so a single conditional wrap
    /// replaces any modulo arithmetic; narrow columns copy as one fixed
    /// 16-byte block into the padded scratch (no `memcpy` call).
    fn gather(&self, conv: &QuantizedConv, row: &mut [i8]) {
        let rf = self.rf;
        let c_in = conv.c_in;
        let newest = if self.pos == 0 { rf - 1 } else { self.pos - 1 };
        for kk in 0..conv.k {
            let shift = kk * conv.dilation; // ≤ (K−1)·d = rf − 1
            let idx = if newest >= shift {
                newest - shift
            } else {
                newest + rf - shift
            };
            let (src, dst) = (idx * c_in, kk * c_in);
            if c_in <= COPY_PAD {
                // Both buffers carry COPY_PAD slack; later taps overwrite
                // the spill and `accumulate_rows` reads only `C_in · K`.
                let chunk: &[i8; COPY_PAD] = self.hist[src..src + COPY_PAD]
                    .try_into()
                    .expect("padded ring");
                row[dst..dst + COPY_PAD].copy_from_slice(chunk);
            } else {
                row[dst..dst + c_in].copy_from_slice(&self.hist[src..src + c_in]);
            }
        }
    }

    /// One streaming step: fused quantize-push, gather, input-major exact
    /// `i32` accumulation, dequantize + bias (+ fused ReLU) into the f32
    /// output column.
    fn step(
        &mut self,
        conv: &QuantizedConv,
        input: &[f32],
        row: &mut [i8],
        acc: &mut [i32],
        out: &mut [f32],
        relu: bool,
    ) {
        self.push_quantized(&input[..conv.c_in], conv.inv_in_scale, conv.c_in);
        if conv.k == 1 {
            // Single-tap convolution (rf = 1): the ring is the gathered row.
            accumulate_rows(&conv.wt_q, &self.hist[..conv.c_in], conv.c_out, acc);
        } else {
            let ck = conv.c_in * conv.k;
            self.gather(conv, row);
            accumulate_rows(&conv.wt_q, &row[..ck], conv.c_out, acc);
        }
        let deq = out
            .iter_mut()
            .zip(acc.iter())
            .zip(conv.deq.iter().zip(conv.bias.iter()));
        if relu {
            for ((slot, &a), (&d, &b)) in deq {
                *slot = (a as f32 * d + b).max(0.0);
            }
        } else {
            for ((slot, &a), (&d, &b)) in deq {
                *slot = a as f32 * d + b;
            }
        }
    }
}

/// State of a quantized strided average-pooling stage: an `i8` window ring
/// at the pool's seam scale, driven by the same [`PoolClock`] as the f32
/// engine so the emission grids cannot drift apart.
#[derive(Debug, Clone)]
struct QPoolState {
    /// `[kernel, C]` ring of quantized columns; row `slot` is next.
    buf: Vec<i8>,
    channels: usize,
    clock: PoolClock,
}

impl QPoolState {
    fn new(channels: usize, qp: &QuantPool) -> Self {
        Self {
            buf: vec![0; qp.spec.kernel * channels],
            channels,
            clock: PoolClock::default(),
        }
    }

    fn reset(&mut self) {
        self.buf.fill(0);
        self.clock.reset();
    }

    /// Quantizes one f32 column into the ring; returns `true` (with the
    /// dequantized window mean in `out`) when the stage emits. Sums of at
    /// most `kernel` i8 codes are exact in f32, so pooled and solo waves
    /// stay bit-identical.
    fn step(&mut self, qp: &QuantPool, input: &[f32], out: &mut [f32]) -> bool {
        let k = qp.spec.kernel;
        let c = self.channels;
        let (slot, emits) = self.clock.tick(&qp.spec);
        let base = slot * c;
        for (q, &v) in self.buf[base..base + c].iter_mut().zip(input.iter()) {
            *q = quantize_value_inv(v, qp.inv_in_scale);
        }
        if !emits {
            return false;
        }
        out[..c].fill(0.0);
        for r in 0..k {
            let row = &self.buf[r * c..(r + 1) * c];
            for (o, &q) in out[..c].iter_mut().zip(row.iter()) {
                *o += f32::from(q);
            }
        }
        for o in &mut out[..c] {
            *o *= qp.deq;
        }
        true
    }
}

/// Per-block streaming state of a quantized session.
#[derive(Debug, Clone)]
enum QBlockState {
    Residual {
        s1: QConvState,
        s2: QConvState,
        ds: Option<QConvState>,
    },
    Plain {
        convs: Vec<QConvState>,
        pool: Option<QPoolState>,
    },
}

impl QBlockState {
    fn new(block: &QuantBlock) -> Self {
        match block {
            QuantBlock::Residual {
                conv1,
                conv2,
                downsample,
            } => QBlockState::Residual {
                s1: QConvState::new(conv1),
                s2: QConvState::new(conv2),
                ds: downsample.as_ref().map(QConvState::new),
            },
            QuantBlock::Plain { convs, pool } => QBlockState::Plain {
                convs: convs.iter().map(QConvState::new).collect(),
                pool: pool
                    .as_ref()
                    .map(|qp| QPoolState::new(convs.last().map(|c| c.c_out).unwrap_or(0), qp)),
            },
        }
    }

    fn reset(&mut self) {
        match self {
            QBlockState::Residual { s1, s2, ds } => {
                s1.reset();
                s2.reset();
                if let Some(ds) = ds {
                    ds.reset();
                }
            }
            QBlockState::Plain { convs, pool } => {
                for c in convs {
                    c.reset();
                }
                if let Some(p) = pool {
                    p.reset();
                }
            }
        }
    }
}

/// Streaming head state of a quantized session.
#[derive(Debug, Clone)]
enum QHeadState {
    PerStep(QConvState),
    /// `[channels, window]` `i8` flatten ring, quantized at the hidden
    /// layer's seam scale; `pos` is the next (oldest) slot.
    Fc {
        buf: Vec<i8>,
        pos: usize,
    },
    /// f32 running mean over time per channel.
    GlobalPool {
        sum: Vec<f32>,
        count: usize,
    },
}

impl QHeadState {
    fn new(head: &QuantHead) -> Self {
        match head {
            QuantHead::PerStep(conv) => QHeadState::PerStep(QConvState::new(conv)),
            QuantHead::Fc {
                channels, window, ..
            } => QHeadState::Fc {
                buf: vec![0; channels * window],
                pos: 0,
            },
            QuantHead::GlobalPoolFc(dense) => QHeadState::GlobalPool {
                sum: vec![0.0; dense.in_features],
                count: 0,
            },
        }
    }

    fn reset(&mut self) {
        match self {
            QHeadState::PerStep(s) => s.reset(),
            QHeadState::Fc { buf, pos } => {
                buf.fill(0);
                *pos = 0;
            }
            QHeadState::GlobalPool { sum, count } => {
                sum.fill(0.0);
                *count = 0;
            }
        }
    }
}

/// One stream's stateful int8 execution of a quantized plan: the same
/// emission schedule as the f32 [`crate::Session`], `i8` ring state, and
/// outputs within [`QuantizedPlan::error_bound`] of the f32 engine.
pub struct QuantizedSession {
    plan: Arc<QuantizedPlan>,
    blocks: Vec<QBlockState>,
    head: QHeadState,
    /// Ping-pong f32 column scratch (each sized to the widest layer).
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
    /// Residual skip column scratch.
    buf_skip: Vec<f32>,
    /// `i8` gather / seam scratch (widest `C_in · K` or dense input).
    row: Vec<i8>,
    /// `i32` accumulator scratch (widest output column).
    acc: Vec<i32>,
    /// Hidden activations of an Fc head.
    hidden: Vec<f32>,
}

impl QuantizedSession {
    /// Creates a fresh (all-zero state) int8 session for `plan`.
    pub fn new(plan: Arc<QuantizedPlan>) -> Self {
        let blocks = plan.blocks.iter().map(QBlockState::new).collect();
        let head = QHeadState::new(&plan.head);
        let (width, row) = scratch_widths_q(&plan);
        let (feat_len, hidden_len) = match &plan.head {
            QuantHead::Fc { hidden, .. } => (hidden.in_features, hidden.out_features),
            QuantHead::GlobalPoolFc(dense) => (dense.in_features, 0),
            QuantHead::PerStep(_) => (0, 0),
        };
        Self {
            blocks,
            head,
            buf_a: vec![0.0; width],
            buf_b: vec![0.0; width],
            buf_skip: vec![0.0; width],
            row: vec![0; row.max(width).max(feat_len).max(hidden_len) + COPY_PAD],
            acc: vec![0; width.max(hidden_len).max(plan.output_dim)],
            hidden: vec![0.0; hidden_len],
            plan,
        }
    }

    /// The plan this session executes.
    pub fn plan(&self) -> &Arc<QuantizedPlan> {
        &self.plan
    }

    /// Clears all stream state back to the zero (causal-padding) state.
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.reset();
        }
        self.head.reset();
    }

    /// Pushes one input sample (length `input_channels`); returns the head
    /// output when this step made it emit.
    pub fn push(&mut self, sample: &[f32]) -> Option<Vec<f32>> {
        let mut out = vec![0.0; self.plan.output_dim];
        self.push_into(sample, &mut out).then_some(out)
    }

    /// Allocation-free variant of [`QuantizedSession::push`].
    ///
    /// # Panics
    ///
    /// Panics if `sample` is shorter than the plan's input channels or `out`
    /// shorter than the output dimension.
    pub fn push_into(&mut self, sample: &[f32], out: &mut [f32]) -> bool {
        // Destructuring splits the borrows without touching the Arc's
        // reference count — an atomic pair per timestep is measurable at
        // sub-microsecond step times.
        let Self {
            plan,
            blocks,
            head,
            buf_a,
            buf_b,
            buf_skip,
            row,
            acc,
            hidden: hidden_buf,
        } = self;
        let plan: &QuantizedPlan = plan;
        assert!(
            sample.len() >= plan.input_channels,
            "sample has {} channels, plan needs {}",
            sample.len(),
            plan.input_channels
        );
        assert!(
            out.len() >= plan.output_dim,
            "output buffer has {} slots, plan emits {}",
            out.len(),
            plan.output_dim
        );
        buf_a[..plan.input_channels].copy_from_slice(&sample[..plan.input_channels]);
        let mut width = plan.input_channels;
        for (block, state) in plan.blocks.iter().zip(blocks.iter_mut()) {
            match (block, state) {
                (
                    QuantBlock::Residual {
                        conv1,
                        conv2,
                        downsample,
                    },
                    QBlockState::Residual { s1, s2, ds },
                ) => {
                    buf_skip[..width].copy_from_slice(&buf_a[..width]);
                    s1.step(conv1, &buf_a[..width], row, acc, buf_b, true);
                    s2.step(conv2, &buf_b[..conv1.c_out], row, acc, buf_a, true);
                    match (downsample, ds) {
                        (Some(proj), Some(pstate)) => {
                            pstate.step(proj, &buf_skip[..width], row, acc, buf_b, false);
                        }
                        _ => buf_b[..width].copy_from_slice(&buf_skip[..width]),
                    }
                    width = conv2.c_out;
                    for (a, b) in buf_a[..width].iter_mut().zip(buf_b.iter()) {
                        *a = (*a + b).max(0.0);
                    }
                }
                (
                    QuantBlock::Plain { convs, pool },
                    QBlockState::Plain {
                        convs: cs,
                        pool: ps,
                    },
                ) => {
                    for (conv, cstate) in convs.iter().zip(cs.iter_mut()) {
                        cstate.step(conv, &buf_a[..width], row, acc, buf_b, true);
                        width = conv.c_out;
                        std::mem::swap(buf_a, buf_b);
                    }
                    if let (Some(qp), Some(pstate)) = (pool, ps) {
                        let emitted = pstate.step(qp, &buf_a[..width], &mut buf_b[..width]);
                        if !emitted {
                            return false;
                        }
                        std::mem::swap(buf_a, buf_b);
                    }
                }
                _ => unreachable!("block/state shape mismatch"),
            }
        }
        match (&plan.head, head) {
            (QuantHead::PerStep(conv), QHeadState::PerStep(state)) => {
                state.step(conv, &buf_a[..width], row, acc, out, false);
                true
            }
            (
                QuantHead::Fc {
                    hidden,
                    output,
                    channels,
                    window,
                },
                QHeadState::Fc { buf, pos },
            ) => {
                // The flatten ring is quantized at the hidden layer's seam.
                push_fc_window_quantize(
                    buf,
                    pos,
                    *window,
                    &buf_a[..*channels],
                    hidden.inv_in_scale,
                );
                gather_fc_window_q(buf, *pos, *channels, *window, row);
                let in_f = hidden.in_features;
                accumulate_rows(&hidden.wq_cols, &row[..in_f], hidden.out_features, acc);
                for (o, slot) in hidden_buf.iter_mut().enumerate() {
                    *slot = (acc[o] as f32 * hidden.deq[o] + hidden.bias[o]).max(0.0);
                }
                // The feats in `row` are spent; reuse it as the output
                // layer's seam buffer.
                output.forward_q(hidden_buf, row, acc, out, false);
                true
            }
            (QuantHead::GlobalPoolFc(dense), QHeadState::GlobalPool { sum, count }) => {
                for (s, &v) in sum.iter_mut().zip(buf_a.iter()) {
                    *s += v;
                }
                *count += 1;
                let inv = 1.0 / *count as f32;
                for (b, &s) in buf_b.iter_mut().zip(sum.iter()) {
                    *b = s * inv;
                }
                dense.forward_q(buf_b, row, acc, out, false);
                true
            }
            _ => unreachable!("head/state shape mismatch"),
        }
    }
}

/// Quantizes one f32 column at the hidden seam straight into an Fc head
/// window ring.
fn push_fc_window_quantize(
    buf: &mut [i8],
    pos: &mut usize,
    window: usize,
    input: &[f32],
    inv_scale: f32,
) {
    for (ci, &v) in input.iter().enumerate() {
        buf[ci * window + *pos] = quantize_value_inv(v, inv_scale);
    }
    *pos = (*pos + 1) % window;
}

/// Gathers the flatten window of a quantized Fc head into `feat`
/// (`[channels · window]`, oldest step first — the offline flatten order).
/// Two contiguous copies per channel instead of a modulo per element.
fn gather_fc_window_q(buf: &[i8], pos: usize, channels: usize, window: usize, feat: &mut [i8]) {
    let head = window - pos;
    for ci in 0..channels {
        let base = ci * window;
        feat[base..base + head].copy_from_slice(&buf[base + pos..base + window]);
        feat[base + head..base + window].copy_from_slice(&buf[base..base + pos]);
    }
}

// ---------------------------------------------------------------------------
// Batched quantized sessions
// ---------------------------------------------------------------------------

/// A pool of concurrent int8 streaming sessions executed in batched waves:
/// the int8 counterpart of [`crate::SessionPool`], with each layer's wave
/// running as one `i8×i8→i32` GEMM ([`pit_tensor::kernels::gemm_i8`]).
pub struct QuantizedSessionPool {
    plan: Arc<QuantizedPlan>,
    sessions: Vec<QuantizedSession>,
    /// Pending samples per session, flattened (`input_channels` floats each).
    queues: Vec<VecDeque<f32>>,
    /// Whether each slot currently belongs to a live stream.
    open: Vec<bool>,
    /// Closed slots available for reuse by
    /// [`QuantizedSessionPool::open_stream`].
    free: Vec<usize>,
    // Per-session scratch widths, kept so open_stream can grow the wave
    // buffers past the initial session count.
    col_w: usize,
    row_w: usize,
    // Wave scratch, reused across flushes.
    active: Vec<usize>,
    cur: Vec<f32>,
    nxt: Vec<f32>,
    skip: Vec<f32>,
    xrows_q: Vec<i8>,
    acc: Vec<i32>,
}

impl QuantizedSessionPool {
    /// Creates a pool of `sessions` fresh (already open) int8 streams over
    /// one shared plan. Pass `0` to start empty and open streams on demand.
    pub fn new(plan: Arc<QuantizedPlan>, sessions: usize) -> Self {
        let (width, row) = scratch_widths_q(&plan);
        let width = width.max(plan.output_dim());
        let (feat_len, hid_len) = match plan.head() {
            QuantHead::Fc { hidden, .. } => (hidden.in_features(), hidden.out_features()),
            QuantHead::GlobalPoolFc(dense) => (dense.in_features(), 0),
            QuantHead::PerStep(_) => (0, 0),
        };
        let row = row.max(feat_len).max(hid_len);
        // The f32 column/accumulator scratch must also hold the dense head's
        // hidden activations, which can be wider than any convolution.
        let width = width.max(hid_len);
        Self {
            sessions: (0..sessions)
                .map(|_| QuantizedSession::new(Arc::clone(&plan)))
                .collect(),
            queues: (0..sessions).map(|_| VecDeque::new()).collect(),
            open: vec![true; sessions],
            free: Vec::new(),
            col_w: width.max(1),
            row_w: row.max(1),
            active: Vec::with_capacity(sessions),
            cur: vec![0.0; sessions * width.max(1)],
            nxt: vec![0.0; sessions * width.max(1)],
            skip: vec![0.0; sessions * width.max(1)],
            xrows_q: vec![0; sessions * row.max(1) + COPY_PAD],
            acc: vec![0; sessions * width.max(1)],
            plan,
        }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<QuantizedPlan> {
        &self.plan
    }

    /// Number of session slots in the pool (open or recycled).
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of currently open streams.
    pub fn open_streams(&self) -> usize {
        self.open.iter().filter(|&&o| o).count()
    }

    /// Whether slot `sid` currently belongs to a live stream.
    pub fn is_open(&self, sid: usize) -> bool {
        self.open.get(sid).copied().unwrap_or(false)
    }

    /// Opens a stream with fresh (zero) state, reusing a closed slot when
    /// one exists and growing the pool otherwise. Returns the stream id.
    pub fn open_stream(&mut self) -> usize {
        if let Some(sid) = self.free.pop() {
            self.open[sid] = true;
            return sid;
        }
        let sid = self.sessions.len();
        self.sessions
            .push(QuantizedSession::new(Arc::clone(&self.plan)));
        self.queues.push(VecDeque::new());
        self.open.push(true);
        let n = self.sessions.len();
        self.cur.resize(n * self.col_w, 0.0);
        self.nxt.resize(n * self.col_w, 0.0);
        self.skip.resize(n * self.col_w, 0.0);
        self.xrows_q.resize(n * self.row_w + COPY_PAD, 0);
        self.acc.resize(n * self.col_w, 0);
        sid
    }

    /// Closes stream `sid`: drops its queued samples, resets its state and
    /// recycles the slot — the int8 twin of
    /// [`crate::SessionPool::close_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range or already closed.
    pub fn close_stream(&mut self, sid: usize) {
        assert!(self.open[sid], "stream {sid} is not open");
        self.sessions[sid].reset();
        self.queues[sid].clear();
        self.open[sid] = false;
        self.free.push(sid);
    }

    /// Pending (queued, not yet flushed) timesteps across all sessions.
    pub fn pending_steps(&self) -> usize {
        let c = self.plan.input_channels().max(1);
        self.queues.iter().map(|q| q.len() / c).sum()
    }

    /// Pending (queued, not yet flushed) timesteps of one session — what a
    /// serving front end checks against its backpressure cap.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range.
    pub fn pending_for(&self, sid: usize) -> usize {
        self.queues[sid].len() / self.plan.input_channels().max(1)
    }

    /// Resets one session's stream state and drops its queued samples.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range.
    pub fn reset_session(&mut self, sid: usize) {
        self.sessions[sid].reset();
        self.queues[sid].clear();
    }

    /// Queues one input sample for session `sid`.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range, the stream is closed, or the sample
    /// length differs from the plan's input channels.
    pub fn push(&mut self, sid: usize, sample: &[f32]) {
        assert_eq!(
            sample.len(),
            self.plan.input_channels(),
            "sample length must equal the plan's input channels"
        );
        assert!(self.open[sid], "stream {sid} is not open");
        self.queues[sid].extend(sample.iter().copied());
    }

    /// Drains every queue in waves and returns the emitted head outputs as
    /// `(session_id, output)` in emission order (per session:
    /// chronological) — the int8 counterpart of
    /// [`crate::SessionPool::flush`].
    pub fn flush(&mut self) -> Vec<(usize, Vec<f32>)> {
        let plan = Arc::clone(&self.plan);
        let c_in = plan.input_channels();
        let mut results = Vec::new();
        loop {
            self.active.clear();
            for (sid, q) in self.queues.iter().enumerate() {
                if q.len() >= c_in {
                    self.active.push(sid);
                }
            }
            if self.active.is_empty() {
                return results;
            }
            for (r, &sid) in self.active.iter().enumerate() {
                for ci in 0..c_in {
                    self.cur[r * c_in + ci] = self.queues[sid].pop_front().expect("queued sample");
                }
            }
            self.run_wave(&plan, c_in, &mut results);
        }
    }

    /// Executes one wave currently held in `self.cur` over `self.active`.
    fn run_wave(
        &mut self,
        plan: &QuantizedPlan,
        c_in: usize,
        results: &mut Vec<(usize, Vec<f32>)>,
    ) {
        let mut width = c_in;
        for (bi, block) in plan.blocks().iter().enumerate() {
            match block {
                QuantBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    let n = self.active.len();
                    self.skip[..n * width].copy_from_slice(&self.cur[..n * width]);
                    self.conv_wave(bi, 0, conv1, width, true);
                    self.conv_wave(bi, 1, conv2, conv1.out_channels(), true);
                    let c_out = conv2.out_channels();
                    if let Some(proj) = downsample {
                        std::mem::swap(&mut self.cur, &mut self.skip);
                        self.conv_wave(bi, 2, proj, width, false);
                        std::mem::swap(&mut self.cur, &mut self.skip);
                    }
                    width = c_out;
                    for (a, b) in self.cur[..n * width].iter_mut().zip(self.skip.iter()) {
                        *a = (*a + b).max(0.0);
                    }
                }
                QuantBlock::Plain { convs, pool } => {
                    for (cj, conv) in convs.iter().enumerate() {
                        self.conv_wave(bi, cj, conv, width, true);
                        width = conv.out_channels();
                    }
                    if let Some(qp) = pool {
                        let mut kept = 0usize;
                        for r in 0..self.active.len() {
                            let sid = self.active[r];
                            let QBlockState::Plain { pool: Some(ps), .. } =
                                &mut self.sessions[sid].blocks[bi]
                            else {
                                unreachable!("pool state missing")
                            };
                            let (src, dst) = (r * width, kept * width);
                            let emitted = ps.step(
                                qp,
                                &self.cur[src..src + width],
                                &mut self.nxt[dst..dst + width],
                            );
                            if emitted {
                                self.active[kept] = sid;
                                kept += 1;
                            }
                        }
                        self.active.truncate(kept);
                        if self.active.is_empty() {
                            return;
                        }
                        std::mem::swap(&mut self.cur, &mut self.nxt);
                    }
                }
            }
        }
        let n = self.active.len();
        match plan.head() {
            QuantHead::PerStep(conv) => {
                let ck = conv.c_in * conv.k;
                for (r, &sid) in self.active.iter().enumerate() {
                    let QHeadState::PerStep(state) = &mut self.sessions[sid].head else {
                        unreachable!("per-step head state missing")
                    };
                    state.push_quantized(
                        &self.cur[r * width..r * width + conv.c_in],
                        conv.inv_in_scale,
                        conv.c_in,
                    );
                    state.gather(conv, &mut self.xrows_q[r * ck..]);
                }
                self.i8_wave(&conv.wt_q, ck, &conv.deq, &conv.bias, false);
                let c_out = conv.c_out;
                for (r, &sid) in self.active.iter().enumerate() {
                    results.push((sid, self.cur[r * c_out..(r + 1) * c_out].to_vec()));
                }
            }
            QuantHead::Fc {
                hidden,
                output,
                channels,
                window,
            } => {
                let in_f = hidden.in_features;
                for (r, &sid) in self.active.iter().enumerate() {
                    let QHeadState::Fc { buf, pos } = &mut self.sessions[sid].head else {
                        unreachable!("fc head state missing")
                    };
                    push_fc_window_quantize(
                        buf,
                        pos,
                        *window,
                        &self.cur[r * width..r * width + *channels],
                        hidden.inv_in_scale,
                    );
                    gather_fc_window_q(
                        buf,
                        *pos,
                        *channels,
                        *window,
                        &mut self.xrows_q[r * in_f..(r + 1) * in_f],
                    );
                }
                let hid_f = hidden.out_features;
                self.i8_wave(&hidden.wq_cols, in_f, &hidden.deq, &hidden.bias, true);
                // Requantize the hidden activations (now in `cur`) at the
                // output layer's seam, then run the output dense as a second
                // i8 wave.
                for r in 0..n {
                    for (q, &v) in self.xrows_q[r * hid_f..(r + 1) * hid_f]
                        .iter_mut()
                        .zip(&self.cur[r * hid_f..(r + 1) * hid_f])
                    {
                        *q = quantize_value_inv(v, output.inv_in_scale);
                    }
                }
                self.i8_wave(&output.wq_cols, hid_f, &output.deq, &output.bias, false);
                let out_f = output.out_features;
                for (r, &sid) in self.active.iter().enumerate() {
                    results.push((sid, self.cur[r * out_f..(r + 1) * out_f].to_vec()));
                }
            }
            QuantHead::GlobalPoolFc(dense) => {
                let in_f = dense.in_features;
                for (r, &sid) in self.active.iter().enumerate() {
                    let QHeadState::GlobalPool { sum, count } = &mut self.sessions[sid].head else {
                        unreachable!("global-pool head state missing")
                    };
                    for (s, &v) in sum.iter_mut().zip(&self.cur[r * width..(r + 1) * width]) {
                        *s += v;
                    }
                    *count += 1;
                    let inv = 1.0 / *count as f32;
                    // Same expression shape as the solo session (mean first,
                    // then the seam multiply) so pooled and solo emissions
                    // stay bit-identical.
                    for (q, &s) in self.xrows_q[r * in_f..(r + 1) * in_f]
                        .iter_mut()
                        .zip(sum.iter())
                    {
                        let mean = s * inv;
                        *q = quantize_value_inv(mean, dense.inv_in_scale);
                    }
                }
                self.i8_wave(&dense.wq_cols, in_f, &dense.deq, &dense.bias, false);
                let out_f = dense.out_features;
                for (r, &sid) in self.active.iter().enumerate() {
                    results.push((sid, self.cur[r * out_f..(r + 1) * out_f].to_vec()));
                }
            }
        }
    }

    /// Batched int8 step of one block convolution over the active wave:
    /// quantizes each session's column at the seam, pushes its `i8` ring,
    /// gathers the rows and runs one `i8` GEMM. Reads from `cur`, leaves the
    /// dequantized f32 output columns in `cur`.
    fn conv_wave(&mut self, bi: usize, cj: usize, conv: &QuantizedConv, width: usize, relu: bool) {
        let ck = conv.c_in * conv.k;
        for (r, &sid) in self.active.iter().enumerate() {
            let session = &mut self.sessions[sid];
            let state = match &mut session.blocks[bi] {
                QBlockState::Residual { s1, s2, ds } => match cj {
                    0 => s1,
                    1 => s2,
                    _ => ds.as_mut().expect("downsample state"),
                },
                QBlockState::Plain { convs, .. } => &mut convs[cj],
            };
            state.push_quantized(
                &self.cur[r * width..r * width + conv.c_in],
                conv.inv_in_scale,
                conv.c_in,
            );
            state.gather(conv, &mut self.xrows_q[r * ck..]);
        }
        self.i8_wave(&conv.wt_q, ck, &conv.deq, &conv.bias, relu);
    }

    /// The shared tail of every conv and dense wave: one `i8` GEMM over the
    /// quantized rows in `xrows_q` (`[n, kd]`) against the `[kd, out]` pack,
    /// dequantize + bias (+ ReLU), leaving the f32 results in `cur`. Using
    /// one finisher for both layer kinds keeps the solo-vs-pool
    /// bit-exactness property a single piece of arithmetic.
    fn i8_wave(&mut self, wq: &[i8], kd: usize, deq: &[f32], bias: &[f32], relu: bool) {
        let n = self.active.len();
        let out_f = deq.len();
        self.acc[..n * out_f].fill(0);
        gemm_i8(n, kd, out_f, &self.xrows_q, wq, &mut self.acc);
        for r in 0..n {
            for o in 0..out_f {
                self.nxt[r * out_f + o] = self.acc[r * out_f + o] as f32 * deq[o] + bias[o];
            }
        }
        if relu {
            relu_in_place(&mut self.nxt[..n * out_f]);
        }
        std::mem::swap(&mut self.cur, &mut self.nxt);
    }
}
