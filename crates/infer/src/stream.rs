//! Stateful per-timestep execution of a compiled plan.
//!
//! A [`Session`] holds, for every layer of an [`InferencePlan`], exactly the
//! state a causal network needs to continue from where it stopped:
//!
//! * each convolution keeps a **ring buffer of its receptive field** — one
//!   new timestep then costs `O(C_out · C_in · alive_taps)` instead of
//!   re-running the whole window (`O(T)` columns) through a tape;
//! * each pooling stage keeps its window and phase, so strided pooling
//!   naturally gates how often deeper layers (and the head) advance;
//! * the head keeps its flatten window (TEMPONet-style `Fc`) or running mean
//!   (`GlobalPoolFc`).
//!
//! Feeding a fresh session the samples `x[0..T]` one at a time reproduces the
//! offline forward on `[1, C, T]` exactly (zero initial state ≡ causal zero
//! padding); the parity tests in `tests/parity.rs` pin this to `1e-5`.
//!
//! The per-step hot path is allocation-free: scratch buffers are owned by the
//! session and reused ([`Session::push_into`]); [`Session::push`] is the
//! allocating convenience wrapper.

use crate::plan::{CompiledConv, Dense, InferencePlan, PlanBlock, PlanHead, PoolSpec};
use std::sync::Arc;

/// Ring buffer holding one convolution's receptive field of input history.
#[derive(Debug, Clone)]
pub(crate) struct ConvState {
    /// `[C_in, rf]` ring; column `pos` is the next write slot.
    hist: Vec<f32>,
    rf: usize,
    pos: usize,
}

impl ConvState {
    pub(crate) fn new(conv: &CompiledConv) -> Self {
        let rf = conv.receptive_field();
        Self {
            hist: vec![0.0; conv.c_in * rf],
            rf,
            pos: 0,
        }
    }

    fn reset(&mut self) {
        self.hist.fill(0.0);
        self.pos = 0;
    }

    /// Writes one input column (length `C_in`) into the ring.
    pub(crate) fn push(&mut self, input: &[f32]) {
        let rf = self.rf;
        for (ci, &v) in input.iter().enumerate() {
            self.hist[ci * rf + self.pos] = v;
        }
        self.pos = (self.pos + 1) % rf;
    }

    /// Gathers the current tap window into `row` (`[C_in · K]`, tap-major per
    /// channel, newest sample at tap 0) — the im2col row of this timestep.
    pub(crate) fn gather(&self, conv: &CompiledConv, row: &mut [f32]) {
        let rf = self.rf;
        // Newest sample sits just before the write cursor.
        let newest = (self.pos + rf - 1) % rf;
        for ci in 0..conv.c_in {
            let base = ci * rf;
            for kk in 0..conv.k {
                let idx = (newest + rf - (kk * conv.dilation) % rf) % rf;
                row[ci * conv.k + kk] = self.hist[base + idx];
            }
        }
    }

    /// Pushes one column and computes the layer's output column into `out`
    /// (length `C_out`), using `row` as `[C_in · K]` gather scratch.
    fn step(&mut self, conv: &CompiledConv, input: &[f32], row: &mut [f32], out: &mut [f32]) {
        self.push(input);
        let ck = conv.c_in * conv.k;
        self.gather(conv, &mut row[..ck]);
        let w = conv.weight.data();
        for (co, slot) in out.iter_mut().take(conv.c_out).enumerate() {
            let wrow = &w[co * ck..(co + 1) * ck];
            let mut acc = conv.bias.data()[co];
            for (a, b) in wrow.iter().zip(row.iter()) {
                acc += a * b;
            }
            *slot = acc;
        }
    }
}

/// Emission schedule of a strided pooling stage, shared by the f32 and int8
/// engines so "identical emission schedule" is a single piece of code, not
/// an invariant across copies. Counter-based: no modulo on the step path.
///
/// Plan construction guarantees `kernel ≥ 1` and `stride ≥ 1` (see
/// [`crate::InferencePlan::new`]), which the countdown arithmetic relies on.
#[derive(Debug, Clone, Default)]
pub(crate) struct PoolClock {
    /// Next write slot (`seen mod kernel`, kept as a counter).
    slot: usize,
    /// Columns seen until the first full window (saturates at `kernel`).
    fill: usize,
    /// Steps remaining until the next emission once the window is full.
    countdown: usize,
}

impl PoolClock {
    pub(crate) fn reset(&mut self) {
        *self = Self::default();
    }

    /// Advances one step; returns the ring slot the incoming column must be
    /// written to and whether the stage emits this step — the offline grid
    /// `t_out = (t − kernel)/stride + 1` (first emission once the window
    /// fills, then every `stride` steps).
    pub(crate) fn tick(&mut self, spec: &PoolSpec) -> (usize, bool) {
        let slot = self.slot;
        self.slot += 1;
        if self.slot == spec.kernel {
            self.slot = 0;
        }
        if self.fill < spec.kernel {
            self.fill += 1;
            if self.fill < spec.kernel {
                return (slot, false);
            }
            self.countdown = 1;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return (slot, false);
        }
        self.countdown = spec.stride;
        (slot, true)
    }
}

/// State of a strided average-pooling stage.
#[derive(Debug, Clone)]
pub(crate) struct PoolState {
    /// `[C, kernel]` ring of the most recent columns.
    buf: Vec<f32>,
    channels: usize,
    clock: PoolClock,
}

impl PoolState {
    pub(crate) fn new(channels: usize, spec: &PoolSpec) -> Self {
        Self {
            buf: vec![0.0; channels * spec.kernel],
            channels,
            clock: PoolClock::default(),
        }
    }

    pub(crate) fn reset(&mut self) {
        self.buf.fill(0.0);
        self.clock.reset();
    }

    /// Pushes one column; returns `true` (with the pooled column in `out`)
    /// when the stage emits (see [`PoolClock::tick`]).
    pub(crate) fn step(&mut self, spec: &PoolSpec, input: &[f32], out: &mut [f32]) -> bool {
        let k = spec.kernel;
        let (slot, emits) = self.clock.tick(spec);
        for (ci, &v) in input.iter().enumerate() {
            self.buf[ci * k + slot] = v;
        }
        if !emits {
            return false;
        }
        let inv = 1.0 / k as f32;
        for ci in 0..self.channels {
            out[ci] = self.buf[ci * k..(ci + 1) * k].iter().sum::<f32>() * inv;
        }
        true
    }
}

/// Per-block streaming state.
#[derive(Debug, Clone)]
pub(crate) enum BlockState {
    /// States for [`PlanBlock::Residual`].
    Residual {
        s1: ConvState,
        s2: ConvState,
        ds: Option<ConvState>,
    },
    /// States for [`PlanBlock::Plain`].
    Plain {
        convs: Vec<ConvState>,
        pool: Option<PoolState>,
    },
}

impl BlockState {
    pub(crate) fn new(block: &PlanBlock) -> Self {
        match block {
            PlanBlock::Residual {
                conv1,
                conv2,
                downsample,
            } => BlockState::Residual {
                s1: ConvState::new(conv1),
                s2: ConvState::new(conv2),
                ds: downsample.as_ref().map(ConvState::new),
            },
            PlanBlock::Plain { convs, pool } => BlockState::Plain {
                convs: convs.iter().map(ConvState::new).collect(),
                pool: pool
                    .as_ref()
                    .map(|spec| PoolState::new(convs.last().map(|c| c.c_out).unwrap_or(0), spec)),
            },
        }
    }

    fn reset(&mut self) {
        match self {
            BlockState::Residual { s1, s2, ds } => {
                s1.reset();
                s2.reset();
                if let Some(ds) = ds {
                    ds.reset();
                }
            }
            BlockState::Plain { convs, pool } => {
                for c in convs {
                    c.reset();
                }
                if let Some(p) = pool {
                    p.reset();
                }
            }
        }
    }
}

/// Streaming head state.
#[derive(Debug, Clone)]
pub(crate) enum HeadState {
    /// Ring for the per-step output convolution.
    PerStep(ConvState),
    /// `[channels, window]` flatten ring for the MLP head; `pos` is the next
    /// (oldest) slot. Unwritten slots are zero, matching the causal pad.
    Fc { buf: Vec<f32>, pos: usize },
    /// Running mean over time per channel.
    GlobalPool { sum: Vec<f32>, count: usize },
}

impl HeadState {
    pub(crate) fn new(head: &PlanHead) -> Self {
        match head {
            PlanHead::PerStep(conv) => HeadState::PerStep(ConvState::new(conv)),
            PlanHead::Fc {
                channels, window, ..
            } => HeadState::Fc {
                buf: vec![0.0; channels * window],
                pos: 0,
            },
            PlanHead::GlobalPoolFc(dense) => HeadState::GlobalPool {
                sum: vec![0.0; dense.in_features],
                count: 0,
            },
        }
    }

    fn reset(&mut self) {
        match self {
            HeadState::PerStep(s) => s.reset(),
            HeadState::Fc { buf, pos } => {
                buf.fill(0.0);
                *pos = 0;
            }
            HeadState::GlobalPool { sum, count } => {
                sum.fill(0.0);
                *count = 0;
            }
        }
    }
}

/// Applies a compiled dense layer to `input`, writing to `out`; `relu`
/// applies the activation in place afterwards.
pub(crate) fn dense_forward(dense: &Dense, input: &[f32], out: &mut [f32], relu: bool) {
    let (nin, nout) = (dense.in_features, dense.out_features);
    out[..nout].copy_from_slice(dense.bias.data());
    let w = dense.weight.data();
    for (i, &x) in input.iter().take(nin).enumerate() {
        if x == 0.0 {
            continue;
        }
        let wrow = &w[i * nout..(i + 1) * nout];
        for (o, wv) in out.iter_mut().take(nout).zip(wrow.iter()) {
            *o += x * wv;
        }
    }
    if relu {
        relu_in_place(&mut out[..nout]);
    }
}

/// Gathers the flatten window of an Fc head state into `feat`
/// (`[channels · window]`, oldest step first — the offline flatten order).
pub(crate) fn gather_fc_window(
    buf: &[f32],
    pos: usize,
    channels: usize,
    window: usize,
    feat: &mut [f32],
) {
    for ci in 0..channels {
        let base = ci * window;
        for j in 0..window {
            feat[base + j] = buf[base + (pos + j) % window];
        }
    }
}

/// Pushes one column into an Fc head window ring.
pub(crate) fn push_fc_window(buf: &mut [f32], pos: &mut usize, window: usize, input: &[f32]) {
    for (ci, &v) in input.iter().enumerate() {
        buf[ci * window + *pos] = v;
    }
    *pos = (*pos + 1) % window;
}

/// One stream's stateful execution of a compiled plan.
///
/// Feed samples with [`Session::push`]/[`Session::push_into`]; the session
/// emits an output whenever the head advances (every step for per-step and
/// un-pooled heads, every `Π strideᵢ` steps behind strided pooling).
pub struct Session {
    plan: Arc<InferencePlan>,
    pub(crate) blocks: Vec<BlockState>,
    pub(crate) head: HeadState,
    /// Ping-pong column scratch (each sized to the widest layer).
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
    /// Residual skip column scratch.
    buf_skip: Vec<f32>,
    /// Im2col gather scratch (widest `C_in · K`).
    row: Vec<f32>,
    /// Head scratch: flatten features and hidden activations.
    feat: Vec<f32>,
    hidden: Vec<f32>,
}

/// Widest column / gather row any layer of the plan needs.
pub(crate) fn scratch_widths(plan: &InferencePlan) -> (usize, usize) {
    let mut width = plan.input_channels;
    let mut row = 1;
    let mut visit = |c: &CompiledConv| {
        width = width.max(c.c_in).max(c.c_out);
        row = row.max(c.c_in * c.k);
    };
    for block in &plan.blocks {
        match block {
            PlanBlock::Residual {
                conv1,
                conv2,
                downsample,
            } => {
                visit(conv1);
                visit(conv2);
                if let Some(ds) = downsample {
                    visit(ds);
                }
            }
            PlanBlock::Plain { convs, .. } => convs.iter().for_each(&mut visit),
        }
    }
    if let PlanHead::PerStep(conv) = &plan.head {
        visit(conv);
    }
    (width, row)
}

impl Session {
    /// Creates a fresh (all-zero state) session for `plan`.
    pub fn new(plan: Arc<InferencePlan>) -> Self {
        let blocks = plan.blocks.iter().map(BlockState::new).collect();
        let head = HeadState::new(&plan.head);
        let (width, row) = scratch_widths(&plan);
        let (feat_len, hidden_len) = match &plan.head {
            PlanHead::Fc { hidden, .. } => (hidden.in_features, hidden.out_features),
            PlanHead::GlobalPoolFc(dense) => (dense.in_features, 0),
            PlanHead::PerStep(_) => (0, 0),
        };
        Self {
            plan,
            blocks,
            head,
            buf_a: vec![0.0; width],
            buf_b: vec![0.0; width],
            buf_skip: vec![0.0; width],
            row: vec![0.0; row],
            feat: vec![0.0; feat_len],
            hidden: vec![0.0; hidden_len],
        }
    }

    /// The plan this session executes.
    pub fn plan(&self) -> &Arc<InferencePlan> {
        &self.plan
    }

    /// Clears all stream state back to the zero (causal-padding) state.
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.reset();
        }
        self.head.reset();
    }

    /// Pushes one input sample (length `input_channels`); returns the head
    /// output when this step made it emit.
    pub fn push(&mut self, sample: &[f32]) -> Option<Vec<f32>> {
        let mut out = vec![0.0; self.plan.output_dim()];
        self.push_into(sample, &mut out).then_some(out)
    }

    /// Allocation-free variant of [`Session::push`]: writes the head output
    /// into `out` (length [`InferencePlan::output_dim`]) and returns whether
    /// it emitted this step.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is shorter than the plan's input channels or `out`
    /// shorter than the output dimension.
    pub fn push_into(&mut self, sample: &[f32], out: &mut [f32]) -> bool {
        let plan = Arc::clone(&self.plan);
        assert!(
            sample.len() >= plan.input_channels,
            "sample has {} channels, plan needs {}",
            sample.len(),
            plan.input_channels
        );
        assert!(
            out.len() >= plan.output_dim(),
            "output buffer has {} slots, plan emits {}",
            out.len(),
            plan.output_dim()
        );
        self.buf_a[..plan.input_channels].copy_from_slice(&sample[..plan.input_channels]);
        let mut width = plan.input_channels;
        for (block, state) in plan.blocks.iter().zip(self.blocks.iter_mut()) {
            match (block, state) {
                (
                    PlanBlock::Residual {
                        conv1,
                        conv2,
                        downsample,
                    },
                    BlockState::Residual { s1, s2, ds },
                ) => {
                    self.buf_skip[..width].copy_from_slice(&self.buf_a[..width]);
                    s1.step(conv1, &self.buf_a[..width], &mut self.row, &mut self.buf_b);
                    relu_in_place(&mut self.buf_b[..conv1.c_out]);
                    s2.step(
                        conv2,
                        &self.buf_b[..conv1.c_out],
                        &mut self.row,
                        &mut self.buf_a,
                    );
                    relu_in_place(&mut self.buf_a[..conv2.c_out]);
                    match (downsample, ds) {
                        (Some(proj), Some(pstate)) => {
                            pstate.step(
                                proj,
                                &self.buf_skip[..width],
                                &mut self.row,
                                &mut self.buf_b,
                            );
                        }
                        _ => self.buf_b[..width].copy_from_slice(&self.buf_skip[..width]),
                    }
                    width = conv2.c_out;
                    for (a, b) in self.buf_a[..width].iter_mut().zip(self.buf_b.iter()) {
                        *a = (*a + b).max(0.0);
                    }
                }
                (
                    PlanBlock::Plain { convs, pool },
                    BlockState::Plain {
                        convs: cs,
                        pool: ps,
                    },
                ) => {
                    for (conv, cstate) in convs.iter().zip(cs.iter_mut()) {
                        cstate.step(conv, &self.buf_a[..width], &mut self.row, &mut self.buf_b);
                        width = conv.c_out;
                        relu_in_place(&mut self.buf_b[..width]);
                        std::mem::swap(&mut self.buf_a, &mut self.buf_b);
                    }
                    if let (Some(spec), Some(pstate)) = (pool, ps) {
                        let emitted =
                            pstate.step(spec, &self.buf_a[..width], &mut self.buf_b[..width]);
                        if !emitted {
                            return false;
                        }
                        std::mem::swap(&mut self.buf_a, &mut self.buf_b);
                    }
                }
                _ => unreachable!("block/state shape mismatch"),
            }
        }
        match (&plan.head, &mut self.head) {
            (PlanHead::PerStep(conv), HeadState::PerStep(state)) => {
                state.step(conv, &self.buf_a[..width], &mut self.row, out);
                true
            }
            (
                PlanHead::Fc {
                    hidden,
                    output,
                    channels,
                    window,
                },
                HeadState::Fc { buf, pos },
            ) => {
                push_fc_window(buf, pos, *window, &self.buf_a[..*channels]);
                gather_fc_window(buf, *pos, *channels, *window, &mut self.feat);
                dense_forward(hidden, &self.feat, &mut self.hidden, true);
                dense_forward(output, &self.hidden, out, false);
                true
            }
            (PlanHead::GlobalPoolFc(dense), HeadState::GlobalPool { sum, count }) => {
                for (s, &v) in sum.iter_mut().zip(self.buf_a.iter()) {
                    *s += v;
                }
                *count += 1;
                let inv = 1.0 / *count as f32;
                for (f, &s) in self.feat.iter_mut().zip(sum.iter()) {
                    *f = s * inv;
                }
                dense_forward(dense, &self.feat, out, false);
                true
            }
            _ => unreachable!("head/state shape mismatch"),
        }
    }
}

pub(crate) fn relu_in_place(buf: &mut [f32]) {
    for v in buf {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile_generic, compile_restcn, compile_temponet};
    use pit_models::{
        GenericTcn, GenericTcnConfig, ResTcn, ResTcnConfig, TempoNet, TempoNetConfig,
    };
    use pit_nas::SearchableNetwork;
    use pit_tensor::{init, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream_all(session: &mut Session, x: &Tensor) -> Vec<Vec<f32>> {
        let (c, t) = (x.dims()[1], x.dims()[2]);
        let mut sample = vec![0.0f32; c];
        let mut outputs = Vec::new();
        for tt in 0..t {
            for ci in 0..c {
                sample[ci] = x.data()[ci * t + tt];
            }
            if let Some(out) = session.push(&sample) {
                outputs.push(out);
            }
        }
        outputs
    }

    #[test]
    fn streaming_restcn_matches_offline_per_step_outputs() {
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = ResTcnConfig {
            hidden_channels: 8,
            input_channels: 5,
            output_channels: 5,
            dropout: 0.0,
            ..ResTcnConfig::paper()
        };
        let net = ResTcn::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        let plan = Arc::new(compile_restcn(&net));
        let x = init::uniform(&mut rng, &[1, 5, 40], 1.0);
        let offline = plan.forward(&x).unwrap();

        let mut session = Session::new(Arc::clone(&plan));
        let outputs = stream_all(&mut session, &x);
        assert_eq!(outputs.len(), 40);
        let c_out = plan.output_dim();
        for (tt, col) in outputs.iter().enumerate() {
            for co in 0..c_out {
                let want = offline.data()[co * 40 + tt];
                assert!(
                    (col[co] - want).abs() < 1e-5,
                    "t={tt} co={co}: {} vs {want}",
                    col[co]
                );
            }
        }
    }

    #[test]
    fn streaming_temponet_matches_offline_window_prediction() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = TempoNetConfig::scaled(8, 64);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        let plan = Arc::new(compile_temponet(&net));
        let x = init::uniform(&mut rng, &[1, 4, 64], 1.0);
        let offline = plan.forward(&x).unwrap();

        let mut session = Session::new(Arc::clone(&plan));
        let outputs = stream_all(&mut session, &x);
        // Three stride-2 pools: the head advances every 8 samples.
        assert_eq!(outputs.len(), 64 / 8);
        let last = outputs.last().unwrap();
        assert!(
            (last[0] - offline.data()[0]).abs() < 1e-5,
            "{} vs {}",
            last[0],
            offline.data()[0]
        );
    }

    #[test]
    fn streaming_generic_running_mean_matches_offline_prefixes() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        net.set_dilations(&[2, 4]);
        let plan = Arc::new(compile_generic(&net));
        let x = init::uniform(&mut rng, &[1, 1, 24], 1.0);
        let mut session = Session::new(Arc::clone(&plan));
        let outputs = stream_all(&mut session, &x);
        assert_eq!(outputs.len(), 24);
        // Every step's output equals the offline forward of the prefix.
        for t in [1usize, 7, 24] {
            let prefix = Tensor::from_vec(x.data()[..t].to_vec(), &[1, 1, t]).unwrap();
            let offline = plan.forward(&prefix).unwrap();
            assert!(
                (outputs[t - 1][0] - offline.data()[0]).abs() < 1e-5,
                "prefix {t}"
            );
        }
    }

    #[test]
    fn reset_restores_the_zero_state() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        let plan = Arc::new(compile_generic(&net));
        let x = init::uniform(&mut rng, &[1, 1, 10], 1.0);
        let mut session = Session::new(Arc::clone(&plan));
        let first = stream_all(&mut session, &x);
        session.reset();
        let second = stream_all(&mut session, &x);
        assert_eq!(first, second);
    }

    #[test]
    fn push_into_is_equivalent_and_reports_emission() {
        let mut rng = StdRng::seed_from_u64(14);
        let cfg = TempoNetConfig::scaled(8, 64);
        let net = TempoNet::new(&mut rng, &cfg);
        let plan = Arc::new(compile_temponet(&net));
        let mut a = Session::new(Arc::clone(&plan));
        let mut b = Session::new(Arc::clone(&plan));
        let mut out = vec![0.0f32; plan.output_dim()];
        let mut emitted = 0;
        for i in 0..32 {
            let sample = [i as f32 * 0.1, -0.2, 0.3, 0.05];
            let via_push = a.push(&sample);
            let did = b.push_into(&sample, &mut out);
            assert_eq!(via_push.is_some(), did);
            if let Some(v) = via_push {
                emitted += 1;
                assert_eq!(v, out);
            }
        }
        assert_eq!(emitted, 32 / 8);
    }
}
