//! Weight-bearing model artifacts: the `pit-arch/2` format.
//!
//! The `pit-arch/1` descriptor JSON persists a searched architecture's
//! *geometry* only — enough to re-derive shapes and deployment costs, but a
//! server booting from it would serve zeros. A `pit-arch/2` artifact is a
//! strict superset: the same `name`/`layers` geometry (so every `pit-arch/1`
//! consumer, e.g. [`NetworkDescriptor::from_json_str`] and the `pit-hw`
//! deployment model, reads it unchanged) plus the compiled plan itself —
//! block structure, f32 weights for an [`InferencePlan`] or int8 codes,
//! per-channel scales and calibration ranges for a [`QuantizedPlan`] —
//! with tensor payloads as base64 little-endian bytes
//! ([`pit_tensor::json::encode_f32s`] / [`pit_tensor::json::encode_i8s`];
//! the vendored serde stub cannot serialise, so the writer and parser are
//! hand-rolled over [`pit_tensor::json::Json`]).
//!
//! This is the boot path of the `pit-serve` daemon: compile (and optionally
//! calibrate + quantize) once, write the artifact with
//! [`InferencePlan::to_artifact_string`] /
//! [`QuantizedPlan::to_artifact_string`], and any later process rebuilds the
//! exact serving plan from the file with [`PlanArtifact::load`] — no model
//! code, searched network or calibration data needed.
//!
//! Round trips are *bit-stable*: parse → render reproduces the committed
//! golden fixtures byte for byte (see `crates/infer/tests/golden_artifact.rs`),
//! and a deserialized [`QuantizedPlan`] streams bit-identically to the plan
//! it was written from (the execution packs and dequantization factors are
//! rebuilt from verbatim-stored scales, not re-derived through lossy float
//! division).
//!
//! Every parse error is a `Result` — corrupt payloads (bad base64, wrong
//! tensor lengths, broken channel chaining, non-finite values) must never
//! panic the process that loads them, because that process is a long-running
//! daemon.

use crate::plan::{CompiledConv, Dense, InferencePlan, PlanBlock, PlanHead, PoolSpec};
use crate::quant::{
    QuantBlock, QuantHead, QuantPool, QuantizedConv, QuantizedDense, QuantizedPlan,
};
use pit_models::{LayerDesc, NetworkDescriptor, DESCRIPTOR_SCHEMA, DESCRIPTOR_SCHEMA_V2};
use pit_tensor::json::{decode_f32s, decode_i8s, encode_f32s, encode_i8s, Json};
use pit_tensor::Tensor;

/// Schema tag of weight-bearing artifacts (alias of
/// [`pit_models::DESCRIPTOR_SCHEMA_V2`]).
pub const ARTIFACT_SCHEMA: &str = DESCRIPTOR_SCHEMA_V2;

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn get_usize(node: &Json, name: &str) -> Result<usize, String> {
    let v = node
        .get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field '{name}'"))?;
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > (1u64 << 32) as f64 {
        return Err(format!("field '{name}': {v} is not a valid size"));
    }
    Ok(v as usize)
}

fn get_dim(node: &Json, name: &str) -> Result<usize, String> {
    let v = get_usize(node, name)?;
    if v == 0 {
        return Err(format!("field '{name}' must be at least 1"));
    }
    Ok(v)
}

fn get_f32(node: &Json, name: &str) -> Result<f32, String> {
    let v = node
        .get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field '{name}'"))?;
    // Check finiteness *after* the narrowing cast: an f64 like 1e39 is
    // finite but overflows to f32 infinity, which would silently poison
    // every derived scale instead of failing the load.
    let narrowed = v as f32;
    if !narrowed.is_finite() {
        return Err(format!("field '{name}': {v} is not a finite f32"));
    }
    Ok(narrowed)
}

fn get_str<'a>(node: &'a Json, name: &str) -> Result<&'a str, String> {
    node.get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field '{name}'"))
}

fn get_obj<'a>(node: &'a Json, name: &str) -> Result<&'a Json, String> {
    match node.get(name) {
        Some(obj @ Json::Obj(_)) => Ok(obj),
        Some(_) => Err(format!("field '{name}' must be an object")),
        None => Err(format!("missing object field '{name}'")),
    }
}

/// `node.get(name)` treating an absent key and JSON `null` the same.
fn get_opt<'a>(node: &'a Json, name: &str) -> Option<&'a Json> {
    match node.get(name) {
        None | Some(Json::Null) => None,
        Some(v) => Some(v),
    }
}

/// Product of tensor dimensions with overflow protection (geometry fields
/// are attacker-controlled in a serving daemon).
fn dims_product(parts: &[usize]) -> Result<usize, String> {
    parts
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| "tensor dimensions overflow".to_string())
}

/// Decodes a base64 f32 payload, checking length and finiteness — arbitrary
/// bytes decode to *some* f32s, including NaN/Inf, which would silently
/// poison every downstream output instead of failing the load.
fn get_f32_payload(node: &Json, name: &str, expect: usize) -> Result<Vec<f32>, String> {
    let values = decode_f32s(get_str(node, name)?).map_err(|e| format!("field '{name}': {e}"))?;
    if values.len() != expect {
        return Err(format!(
            "field '{name}' holds {} values, geometry needs {expect}",
            values.len()
        ));
    }
    if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
        return Err(format!("field '{name}' contains non-finite value {bad}"));
    }
    Ok(values)
}

fn get_i8_payload(node: &Json, name: &str, expect: usize) -> Result<Vec<i8>, String> {
    let values = decode_i8s(get_str(node, name)?).map_err(|e| format!("field '{name}': {e}"))?;
    if values.len() != expect {
        return Err(format!(
            "field '{name}' holds {} values, geometry needs {expect}",
            values.len()
        ));
    }
    Ok(values)
}

fn num(v: usize) -> Json {
    Json::Num(v as f64)
}

fn check_schema_and_kind(doc: &Json, want_kind: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(ARTIFACT_SCHEMA) => {}
        Some(DESCRIPTOR_SCHEMA) => {
            return Err(format!(
                "'{DESCRIPTOR_SCHEMA}' documents carry geometry only (no weights); \
                 load them with NetworkDescriptor::from_json_str + \
                 InferencePlan::from_descriptor, or re-export the plan as \
                 '{ARTIFACT_SCHEMA}'"
            ))
        }
        Some(other) => return Err(format!("unsupported artifact schema '{other}'")),
        None => return Err("missing 'schema' field".into()),
    }
    let kind = get_str(doc, "kind")?;
    if kind != want_kind {
        return Err(format!("artifact kind is '{kind}', expected '{want_kind}'"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// f32 layer payloads
// ---------------------------------------------------------------------------

fn conv_to_json(conv: &CompiledConv) -> Json {
    Json::Obj(vec![
        ("c_in".into(), num(conv.in_channels())),
        ("c_out".into(), num(conv.out_channels())),
        ("kernel".into(), num(conv.kernel())),
        ("dilation".into(), num(conv.dilation())),
        ("weight".into(), Json::Str(encode_f32s(conv.weight.data()))),
        ("bias".into(), Json::Str(encode_f32s(conv.bias.data()))),
    ])
}

fn conv_from_json(node: &Json) -> Result<CompiledConv, String> {
    let c_in = get_dim(node, "c_in")?;
    let c_out = get_dim(node, "c_out")?;
    let kernel = get_dim(node, "kernel")?;
    let dilation = get_dim(node, "dilation")?;
    let weight = get_f32_payload(node, "weight", dims_product(&[c_out, c_in, kernel])?)?;
    let bias = get_f32_payload(node, "bias", c_out)?;
    let weight = Tensor::from_vec(weight, &[c_out, c_in, kernel]).map_err(|e| e.to_string())?;
    let bias = Tensor::from_vec(bias, &[c_out]).map_err(|e| e.to_string())?;
    Ok(CompiledConv::new(weight, bias, dilation))
}

fn dense_to_json(dense: &Dense) -> Json {
    Json::Obj(vec![
        ("in_features".into(), num(dense.in_features())),
        ("out_features".into(), num(dense.out_features())),
        ("weight".into(), Json::Str(encode_f32s(dense.weight.data()))),
        ("bias".into(), Json::Str(encode_f32s(dense.bias.data()))),
    ])
}

fn dense_from_json(node: &Json) -> Result<Dense, String> {
    let in_f = get_dim(node, "in_features")?;
    let out_f = get_dim(node, "out_features")?;
    let weight = get_f32_payload(node, "weight", dims_product(&[in_f, out_f])?)?;
    let bias = get_f32_payload(node, "bias", out_f)?;
    let weight = Tensor::from_vec(weight, &[in_f, out_f]).map_err(|e| e.to_string())?;
    let bias = Tensor::from_vec(bias, &[out_f]).map_err(|e| e.to_string())?;
    Ok(Dense::new(weight, bias))
}

fn pool_to_json(spec: &PoolSpec) -> Json {
    Json::Obj(vec![
        ("kernel".into(), num(spec.kernel)),
        ("stride".into(), num(spec.stride)),
    ])
}

fn pool_from_json(node: &Json) -> Result<PoolSpec, String> {
    Ok(PoolSpec {
        kernel: get_dim(node, "kernel")?,
        stride: get_dim(node, "stride")?,
    })
}

fn blocks_to_json(blocks: &[PlanBlock]) -> Json {
    Json::Arr(
        blocks
            .iter()
            .map(|block| match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => Json::Obj(vec![
                    ("kind".into(), Json::Str("residual".into())),
                    ("conv1".into(), conv_to_json(conv1)),
                    ("conv2".into(), conv_to_json(conv2)),
                    (
                        "downsample".into(),
                        downsample.as_ref().map(conv_to_json).unwrap_or(Json::Null),
                    ),
                ]),
                PlanBlock::Plain { convs, pool } => Json::Obj(vec![
                    ("kind".into(), Json::Str("plain".into())),
                    (
                        "convs".into(),
                        Json::Arr(convs.iter().map(conv_to_json).collect()),
                    ),
                    (
                        "pool".into(),
                        pool.as_ref().map(pool_to_json).unwrap_or(Json::Null),
                    ),
                ]),
            })
            .collect(),
    )
}

/// Parses blocks and walks the channel chain, returning the feature width
/// feeding the head — the same invariants [`InferencePlan::new`] asserts,
/// but as `Err` instead of a panic: the caller is typically a daemon
/// loading an untrusted file.
fn blocks_from_json(doc: &Json, input_channels: usize) -> Result<(Vec<PlanBlock>, usize), String> {
    let nodes = doc
        .get("blocks")
        .and_then(Json::as_array)
        .ok_or("missing 'blocks' array")?;
    let mut blocks = Vec::with_capacity(nodes.len());
    let mut width = input_channels;
    for (i, node) in nodes.iter().enumerate() {
        let err = |msg: String| format!("block {i}: {msg}");
        match get_str(node, "kind").map_err(&err)? {
            "residual" => {
                let conv1 = conv_from_json(get_obj(node, "conv1").map_err(&err)?).map_err(&err)?;
                let conv2 = conv_from_json(get_obj(node, "conv2").map_err(&err)?).map_err(&err)?;
                let downsample = match get_opt(node, "downsample") {
                    Some(ds) => Some(conv_from_json(ds).map_err(&err)?),
                    None => None,
                };
                if conv1.in_channels() != width {
                    return Err(err(format!(
                        "conv1 expects {} input channels, chain carries {width}",
                        conv1.in_channels()
                    )));
                }
                if conv2.in_channels() != conv1.out_channels() {
                    return Err(err("conv2 does not chain after conv1".into()));
                }
                match &downsample {
                    Some(ds) => {
                        if ds.in_channels() != width || ds.out_channels() != conv2.out_channels() {
                            return Err(err("downsample geometry mismatch".into()));
                        }
                    }
                    None => {
                        if width != conv2.out_channels() {
                            return Err(err(
                                "residual skip needs a downsample when channels change".into(),
                            ));
                        }
                    }
                }
                width = conv2.out_channels();
                blocks.push(PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                });
            }
            "plain" => {
                let conv_nodes = node
                    .get("convs")
                    .and_then(Json::as_array)
                    .ok_or_else(|| err("missing 'convs' array".into()))?;
                if conv_nodes.is_empty() {
                    return Err(err("plain block holds no convolutions".into()));
                }
                let mut convs = Vec::with_capacity(conv_nodes.len());
                for cn in conv_nodes {
                    let conv = conv_from_json(cn).map_err(&err)?;
                    if conv.in_channels() != width {
                        return Err(err(format!(
                            "convolution expects {} input channels, chain carries {width}",
                            conv.in_channels()
                        )));
                    }
                    width = conv.out_channels();
                    convs.push(conv);
                }
                let pool = match get_opt(node, "pool") {
                    Some(p) => Some(pool_from_json(p).map_err(&err)?),
                    None => None,
                };
                blocks.push(PlanBlock::Plain { convs, pool });
            }
            other => return Err(err(format!("unknown block kind '{other}'"))),
        }
    }
    Ok((blocks, width))
}

fn head_to_json(head: &PlanHead) -> Json {
    match head {
        PlanHead::PerStep(conv) => Json::Obj(vec![
            ("kind".into(), Json::Str("per_step".into())),
            ("conv".into(), conv_to_json(conv)),
        ]),
        PlanHead::Fc {
            hidden,
            output,
            channels,
            window,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("fc".into())),
            ("channels".into(), num(*channels)),
            ("window".into(), num(*window)),
            ("hidden".into(), dense_to_json(hidden)),
            ("output".into(), dense_to_json(output)),
        ]),
        PlanHead::GlobalPoolFc(dense) => Json::Obj(vec![
            ("kind".into(), Json::Str("global_pool_fc".into())),
            ("dense".into(), dense_to_json(dense)),
        ]),
    }
}

fn head_from_json(doc: &Json, width: usize) -> Result<PlanHead, String> {
    let node = get_obj(doc, "head")?;
    let err = |msg: String| format!("head: {msg}");
    match get_str(node, "kind").map_err(&err)? {
        "per_step" => {
            let conv = conv_from_json(get_obj(node, "conv").map_err(&err)?).map_err(&err)?;
            if conv.in_channels() != width {
                return Err(err(format!(
                    "per-step conv expects {} input channels, chain carries {width}",
                    conv.in_channels()
                )));
            }
            Ok(PlanHead::PerStep(conv))
        }
        "fc" => {
            let channels = get_dim(node, "channels").map_err(&err)?;
            let window = get_dim(node, "window").map_err(&err)?;
            let hidden = dense_from_json(get_obj(node, "hidden").map_err(&err)?).map_err(&err)?;
            let output = dense_from_json(get_obj(node, "output").map_err(&err)?).map_err(&err)?;
            if channels != width {
                return Err(err(format!(
                    "fc head channels {channels} do not match chain width {width}"
                )));
            }
            if hidden.in_features() != dims_product(&[channels, window])? {
                return Err(err("hidden layer does not match channels x window".into()));
            }
            if output.in_features() != hidden.out_features() {
                return Err(err("output layer does not stack on hidden".into()));
            }
            Ok(PlanHead::Fc {
                hidden,
                output,
                channels,
                window,
            })
        }
        "global_pool_fc" => {
            let dense = dense_from_json(get_obj(node, "dense").map_err(&err)?).map_err(&err)?;
            if dense.in_features() != width {
                return Err(err(format!(
                    "dense expects {} features, chain carries {width}",
                    dense.in_features()
                )));
            }
            Ok(PlanHead::GlobalPoolFc(dense))
        }
        other => Err(err(format!("unknown head kind '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// int8 layer payloads
// ---------------------------------------------------------------------------

fn qconv_to_json(conv: &QuantizedConv) -> Json {
    Json::Obj(vec![
        ("c_in".into(), num(conv.in_channels())),
        ("c_out".into(), num(conv.out_channels())),
        ("kernel".into(), num(conv.kernel())),
        ("dilation".into(), num(conv.dilation())),
        ("in_max".into(), Json::Num(f64::from(conv.in_max))),
        ("wq".into(), Json::Str(encode_i8s(&conv.canonical_wq()))),
        ("scales".into(), Json::Str(encode_f32s(&conv.w_scales))),
        ("bias".into(), Json::Str(encode_f32s(&conv.bias))),
        ("dw_l1".into(), Json::Str(encode_f32s(&conv.dw_l1))),
    ])
}

fn qconv_from_json(node: &Json) -> Result<QuantizedConv, String> {
    let c_in = get_dim(node, "c_in")?;
    let c_out = get_dim(node, "c_out")?;
    let kernel = get_dim(node, "kernel")?;
    let dilation = get_dim(node, "dilation")?;
    let in_max = get_f32(node, "in_max")?;
    if in_max < 0.0 {
        return Err("field 'in_max' must be non-negative".into());
    }
    let wq = get_i8_payload(node, "wq", dims_product(&[c_out, c_in, kernel])?)?;
    let scales = get_f32_payload(node, "scales", c_out)?;
    let bias = get_f32_payload(node, "bias", c_out)?;
    let dw_l1 = get_f32_payload(node, "dw_l1", c_out)?;
    Ok(QuantizedConv::from_quantized_parts(
        c_in, c_out, kernel, dilation, &wq, scales, in_max, bias, dw_l1,
    ))
}

fn qdense_to_json(dense: &QuantizedDense) -> Json {
    Json::Obj(vec![
        ("in_features".into(), num(dense.in_features())),
        ("out_features".into(), num(dense.out_features())),
        ("in_max".into(), Json::Num(f64::from(dense.in_max))),
        ("wq".into(), Json::Str(encode_i8s(&dense.canonical_wq()))),
        ("scales".into(), Json::Str(encode_f32s(&dense.w_scales))),
        ("bias".into(), Json::Str(encode_f32s(&dense.bias))),
        ("dw_l1".into(), Json::Str(encode_f32s(&dense.dw_l1))),
    ])
}

fn qdense_from_json(node: &Json) -> Result<QuantizedDense, String> {
    let in_f = get_dim(node, "in_features")?;
    let out_f = get_dim(node, "out_features")?;
    let in_max = get_f32(node, "in_max")?;
    if in_max < 0.0 {
        return Err("field 'in_max' must be non-negative".into());
    }
    let wq = get_i8_payload(node, "wq", dims_product(&[in_f, out_f])?)?;
    let scales = get_f32_payload(node, "scales", out_f)?;
    let bias = get_f32_payload(node, "bias", out_f)?;
    let dw_l1 = get_f32_payload(node, "dw_l1", out_f)?;
    Ok(QuantizedDense::from_quantized_parts(
        in_f, out_f, &wq, scales, in_max, bias, dw_l1,
    ))
}

fn qpool_to_json(pool: &QuantPool) -> Json {
    Json::Obj(vec![
        ("kernel".into(), num(pool.spec.kernel)),
        ("stride".into(), num(pool.spec.stride)),
        ("in_max".into(), Json::Num(f64::from(pool.in_max))),
    ])
}

fn qpool_from_json(node: &Json) -> Result<QuantPool, String> {
    let spec = pool_from_json(node)?;
    let in_max = get_f32(node, "in_max")?;
    if in_max < 0.0 {
        return Err("field 'in_max' must be non-negative".into());
    }
    Ok(QuantPool::new(spec, in_max))
}

fn qblocks_to_json(blocks: &[QuantBlock]) -> Json {
    Json::Arr(
        blocks
            .iter()
            .map(|block| match block {
                QuantBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => Json::Obj(vec![
                    ("kind".into(), Json::Str("residual".into())),
                    ("conv1".into(), qconv_to_json(conv1)),
                    ("conv2".into(), qconv_to_json(conv2)),
                    (
                        "downsample".into(),
                        downsample.as_ref().map(qconv_to_json).unwrap_or(Json::Null),
                    ),
                ]),
                QuantBlock::Plain { convs, pool } => Json::Obj(vec![
                    ("kind".into(), Json::Str("plain".into())),
                    (
                        "convs".into(),
                        Json::Arr(convs.iter().map(qconv_to_json).collect()),
                    ),
                    (
                        "pool".into(),
                        pool.as_ref().map(qpool_to_json).unwrap_or(Json::Null),
                    ),
                ]),
            })
            .collect(),
    )
}

/// The int8 twin of [`blocks_from_json`]: parse, chain-check, return the
/// final feature width. The streaming executor trusts these invariants
/// (`unreachable!` on mismatch), so an artifact that breaks them must be
/// rejected here.
fn qblocks_from_json(
    doc: &Json,
    input_channels: usize,
) -> Result<(Vec<QuantBlock>, usize), String> {
    let nodes = doc
        .get("blocks")
        .and_then(Json::as_array)
        .ok_or("missing 'blocks' array")?;
    let mut blocks = Vec::with_capacity(nodes.len());
    let mut width = input_channels;
    for (i, node) in nodes.iter().enumerate() {
        let err = |msg: String| format!("block {i}: {msg}");
        match get_str(node, "kind").map_err(&err)? {
            "residual" => {
                let conv1 = qconv_from_json(get_obj(node, "conv1").map_err(&err)?).map_err(&err)?;
                let conv2 = qconv_from_json(get_obj(node, "conv2").map_err(&err)?).map_err(&err)?;
                let downsample = match get_opt(node, "downsample") {
                    Some(ds) => Some(qconv_from_json(ds).map_err(&err)?),
                    None => None,
                };
                if conv1.in_channels() != width || conv2.in_channels() != conv1.out_channels() {
                    return Err(err("residual convolutions do not chain".into()));
                }
                match &downsample {
                    Some(ds) => {
                        if ds.in_channels() != width || ds.out_channels() != conv2.out_channels() {
                            return Err(err("downsample geometry mismatch".into()));
                        }
                    }
                    None => {
                        if width != conv2.out_channels() {
                            return Err(err(
                                "residual skip needs a downsample when channels change".into(),
                            ));
                        }
                    }
                }
                width = conv2.out_channels();
                blocks.push(QuantBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                });
            }
            "plain" => {
                let conv_nodes = node
                    .get("convs")
                    .and_then(Json::as_array)
                    .ok_or_else(|| err("missing 'convs' array".into()))?;
                if conv_nodes.is_empty() {
                    return Err(err("plain block holds no convolutions".into()));
                }
                let mut convs = Vec::with_capacity(conv_nodes.len());
                for cn in conv_nodes {
                    let conv = qconv_from_json(cn).map_err(&err)?;
                    if conv.in_channels() != width {
                        return Err(err(format!(
                            "convolution expects {} input channels, chain carries {width}",
                            conv.in_channels()
                        )));
                    }
                    width = conv.out_channels();
                    convs.push(conv);
                }
                let pool = match get_opt(node, "pool") {
                    Some(p) => Some(qpool_from_json(p).map_err(&err)?),
                    None => None,
                };
                blocks.push(QuantBlock::Plain { convs, pool });
            }
            other => return Err(err(format!("unknown block kind '{other}'"))),
        }
    }
    Ok((blocks, width))
}

fn qhead_to_json(head: &QuantHead) -> Json {
    match head {
        QuantHead::PerStep(conv) => Json::Obj(vec![
            ("kind".into(), Json::Str("per_step".into())),
            ("conv".into(), qconv_to_json(conv)),
        ]),
        QuantHead::Fc {
            hidden,
            output,
            channels,
            window,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("fc".into())),
            ("channels".into(), num(*channels)),
            ("window".into(), num(*window)),
            ("hidden".into(), qdense_to_json(hidden)),
            ("output".into(), qdense_to_json(output)),
        ]),
        QuantHead::GlobalPoolFc(dense) => Json::Obj(vec![
            ("kind".into(), Json::Str("global_pool_fc".into())),
            ("dense".into(), qdense_to_json(dense)),
        ]),
    }
}

fn qhead_from_json(doc: &Json, width: usize) -> Result<QuantHead, String> {
    let node = get_obj(doc, "head")?;
    let err = |msg: String| format!("head: {msg}");
    match get_str(node, "kind").map_err(&err)? {
        "per_step" => {
            let conv = qconv_from_json(get_obj(node, "conv").map_err(&err)?).map_err(&err)?;
            if conv.in_channels() != width {
                return Err(err(format!(
                    "per-step conv expects {} input channels, chain carries {width}",
                    conv.in_channels()
                )));
            }
            Ok(QuantHead::PerStep(conv))
        }
        "fc" => {
            let channels = get_dim(node, "channels").map_err(&err)?;
            let window = get_dim(node, "window").map_err(&err)?;
            let hidden = qdense_from_json(get_obj(node, "hidden").map_err(&err)?).map_err(&err)?;
            let output = qdense_from_json(get_obj(node, "output").map_err(&err)?).map_err(&err)?;
            if channels != width {
                return Err(err(format!(
                    "fc head channels {channels} do not match chain width {width}"
                )));
            }
            if hidden.in_features() != dims_product(&[channels, window])? {
                return Err(err("hidden layer does not match channels x window".into()));
            }
            if output.in_features() != hidden.out_features() {
                return Err(err("output layer does not stack on hidden".into()));
            }
            Ok(QuantHead::Fc {
                hidden,
                output,
                channels,
                window,
            })
        }
        "global_pool_fc" => {
            let dense = qdense_from_json(get_obj(node, "dense").map_err(&err)?).map_err(&err)?;
            if dense.in_features() != width {
                return Err(err(format!(
                    "dense expects {} features, chain carries {width}",
                    dense.in_features()
                )));
            }
            Ok(QuantHead::GlobalPoolFc(dense))
        }
        other => Err(err(format!("unknown head kind '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Plan round trips
// ---------------------------------------------------------------------------

fn artifact_doc(
    name: &str,
    kind: &str,
    input_channels: usize,
    layers: NetworkDescriptor,
    blocks: Json,
    head: Json,
) -> Json {
    let layers = match layers.to_json() {
        Json::Obj(pairs) => pairs
            .into_iter()
            .find(|(k, _)| k == "layers")
            .map(|(_, v)| v)
            .unwrap_or(Json::Arr(Vec::new())),
        _ => Json::Arr(Vec::new()),
    };
    Json::Obj(vec![
        ("schema".into(), Json::Str(ARTIFACT_SCHEMA.into())),
        ("name".into(), Json::Str(name.into())),
        ("kind".into(), Json::Str(kind.into())),
        ("input_channels".into(), num(input_channels)),
        ("layers".into(), layers),
        ("blocks".into(), blocks),
        ("head".into(), head),
    ])
}

impl InferencePlan {
    /// Serialises the plan — structure *and* weights — as a `pit-arch/2`
    /// artifact document. The geometry `layers` list matches
    /// [`InferencePlan::descriptor`] at `t_in = receptive_field()`, so the
    /// document doubles as a `pit-arch/1`-shaped descriptor for
    /// geometry-only consumers.
    pub fn to_artifact(&self) -> Json {
        artifact_doc(
            self.name(),
            "f32",
            self.input_channels(),
            self.descriptor(self.receptive_field()),
            blocks_to_json(&self.blocks),
            head_to_json(&self.head),
        )
    }

    /// [`InferencePlan::to_artifact`] rendered as committed-file-friendly
    /// JSON text.
    pub fn to_artifact_string(&self) -> String {
        self.to_artifact().render()
    }

    /// Rebuilds a plan, weights included, from a `pit-arch/2` artifact
    /// document of kind `f32`.
    ///
    /// # Errors
    ///
    /// Returns a message on a schema/kind mismatch, a malformed layer
    /// payload (bad base64, wrong tensor length, non-finite value) or
    /// geometry that does not chain — never panics, so a serving daemon can
    /// load untrusted files.
    pub fn from_artifact(doc: &Json) -> Result<Self, String> {
        check_schema_and_kind(doc, "f32")?;
        let name = get_str(doc, "name")?.to_string();
        let input_channels = get_dim(doc, "input_channels")?;
        let (blocks, width) = blocks_from_json(doc, input_channels)?;
        let head = head_from_json(doc, width)?;
        // The chain checks above re-establish `InferencePlan::new`'s
        // invariants, so this cannot panic.
        Ok(Self::new(name, input_channels, blocks, head))
    }

    /// [`InferencePlan::from_artifact`] from JSON text.
    ///
    /// # Errors
    ///
    /// As [`InferencePlan::from_artifact`], plus JSON syntax errors.
    pub fn from_artifact_str(text: &str) -> Result<Self, String> {
        Self::from_artifact(&Json::parse(text)?)
    }
}

impl QuantizedPlan {
    /// Receptive field of the conv/pool stack in input samples — the int8
    /// twin of [`InferencePlan::receptive_field`].
    pub fn receptive_field(&self) -> usize {
        let mut rf = 1usize;
        let mut jump = 1usize;
        let mut grow = |k: usize, d: usize, j: usize| {
            rf += (k - 1) * d * j;
        };
        for block in &self.blocks {
            match block {
                QuantBlock::Residual { conv1, conv2, .. } => {
                    grow(conv1.kernel(), conv1.dilation(), jump);
                    grow(conv2.kernel(), conv2.dilation(), jump);
                }
                QuantBlock::Plain { convs, pool } => {
                    for conv in convs {
                        grow(conv.kernel(), conv.dilation(), jump);
                    }
                    if let Some(qp) = pool {
                        grow(qp.spec.kernel, 1, jump);
                        jump *= qp.spec.stride;
                    }
                }
            }
        }
        if let QuantHead::PerStep(conv) = &self.head {
            grow(conv.kernel(), conv.dilation(), jump);
        }
        rf
    }

    /// Exports the plan geometry as a [`NetworkDescriptor`] for an input of
    /// length `t_in` — the int8 twin of [`InferencePlan::descriptor`]
    /// (weight/MAC accounting counts the quantized layers' geometry; the
    /// byte width is not the descriptor's concern).
    pub fn descriptor(&self, t_in: usize) -> NetworkDescriptor {
        let mut d = NetworkDescriptor::new(self.name.clone());
        let mut t = t_in;
        let conv_desc = |conv: &QuantizedConv, t: usize| LayerDesc::Conv1d {
            c_in: conv.in_channels(),
            c_out: conv.out_channels(),
            kernel: conv.kernel(),
            dilation: conv.dilation(),
            t_in: t,
            t_out: t,
        };
        for block in &self.blocks {
            match block {
                QuantBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    d.push(conv_desc(conv1, t));
                    d.push(conv_desc(conv2, t));
                    if let Some(ds) = downsample {
                        d.push(conv_desc(ds, t));
                    }
                }
                QuantBlock::Plain { convs, pool } => {
                    for conv in convs {
                        d.push(conv_desc(conv, t));
                    }
                    if let Some(qp) = pool {
                        let t_out = (t.saturating_sub(qp.spec.kernel)) / qp.spec.stride + 1;
                        let channels = convs.last().map(|c| c.out_channels()).unwrap_or(0);
                        d.push(LayerDesc::AvgPool {
                            channels,
                            kernel: qp.spec.kernel,
                            stride: qp.spec.stride,
                            t_in: t,
                            t_out,
                        });
                        t = t_out;
                    }
                }
            }
        }
        match &self.head {
            QuantHead::PerStep(conv) => d.push(conv_desc(conv, t)),
            QuantHead::Fc { hidden, output, .. } => {
                d.push(LayerDesc::Linear {
                    in_features: hidden.in_features(),
                    out_features: hidden.out_features(),
                });
                d.push(LayerDesc::Linear {
                    in_features: output.in_features(),
                    out_features: output.out_features(),
                });
            }
            QuantHead::GlobalPoolFc(dense) => d.push(LayerDesc::Linear {
                in_features: dense.in_features(),
                out_features: dense.out_features(),
            }),
        }
        d
    }

    /// Serialises the quantized plan — int8 codes, per-channel scales,
    /// calibration ranges, f32 biases and the weight-rounding masses the
    /// analytic error bound needs — as a `pit-arch/2` artifact of kind `i8`.
    pub fn to_artifact(&self) -> Json {
        artifact_doc(
            self.name(),
            "i8",
            self.input_channels(),
            self.descriptor(self.receptive_field()),
            qblocks_to_json(&self.blocks),
            qhead_to_json(&self.head),
        )
    }

    /// [`QuantizedPlan::to_artifact`] rendered as committed-file-friendly
    /// JSON text.
    pub fn to_artifact_string(&self) -> String {
        self.to_artifact().render()
    }

    /// Rebuilds a quantized plan from a `pit-arch/2` artifact of kind `i8`.
    /// The loaded plan streams bit-identically to the plan the artifact was
    /// written from, and [`QuantizedPlan::error_bound`] is re-derived from
    /// the stored scales and rounding masses.
    ///
    /// # Errors
    ///
    /// Returns a message on a schema/kind mismatch, malformed payloads or
    /// broken geometry — never panics (daemon boot path).
    pub fn from_artifact(doc: &Json) -> Result<Self, String> {
        check_schema_and_kind(doc, "i8")?;
        let name = get_str(doc, "name")?.to_string();
        let input_channels = get_dim(doc, "input_channels")?;
        let (blocks, width) = qblocks_from_json(doc, input_channels)?;
        let head = qhead_from_json(doc, width)?;
        Ok(Self::assemble(name, input_channels, blocks, head))
    }

    /// [`QuantizedPlan::from_artifact`] from JSON text.
    ///
    /// # Errors
    ///
    /// As [`QuantizedPlan::from_artifact`], plus JSON syntax errors.
    pub fn from_artifact_str(text: &str) -> Result<Self, String> {
        Self::from_artifact(&Json::parse(text)?)
    }
}

/// A loaded `pit-arch/2` artifact of either kind — what a serving process
/// boots from when the precision is decided by the file, not the code.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PlanArtifact {
    /// An f32 inference plan.
    F32(InferencePlan),
    /// An int8 quantized plan.
    I8(QuantizedPlan),
}

impl PlanArtifact {
    /// Parses an artifact document of either kind (dispatching on the
    /// `kind` field).
    ///
    /// # Errors
    ///
    /// Returns a message on syntax errors, unsupported schemas (including a
    /// pointed message for weight-less `pit-arch/1` documents) or malformed
    /// payloads.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        match doc.get("kind").and_then(Json::as_str) {
            Some("f32") => InferencePlan::from_artifact(&doc).map(PlanArtifact::F32),
            Some("i8") => QuantizedPlan::from_artifact(&doc).map(PlanArtifact::I8),
            Some(other) => Err(format!("unknown artifact kind '{other}'")),
            // No kind field: let the schema check produce the right error
            // (pit-arch/1 gets the "geometry only" explanation).
            None => InferencePlan::from_artifact(&doc).map(PlanArtifact::F32),
        }
    }

    /// Largest artifact file [`PlanArtifact::load`] will read. Real
    /// artifacts are kilobytes to a few megabytes; the cap keeps a hostile
    /// LOAD_MODEL path (or a fat-fingered one) from ballooning a serving
    /// daemon's memory.
    pub const MAX_FILE_BYTES: u64 = 256 << 20;

    /// Reads and parses an artifact file.
    ///
    /// Defensive like the rest of this module — callers are long-running
    /// daemons handed untrusted paths: only regular files are read (no
    /// FIFOs or device nodes, whose reads can block or never end) and the
    /// size is bounded by [`PlanArtifact::MAX_FILE_BYTES`] before any
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O errors, non-regular or oversized files, or
    /// any parse failure.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let meta =
            std::fs::metadata(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if !meta.is_file() {
            return Err(format!("{} is not a regular file", path.display()));
        }
        if meta.len() > Self::MAX_FILE_BYTES {
            return Err(format!(
                "{} is {} bytes, beyond the {}-byte artifact bound",
                path.display(),
                meta.len(),
                Self::MAX_FILE_BYTES
            ));
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// `"f32"` or `"i8"` — the `kind` field of the document.
    pub fn kind(&self) -> &'static str {
        match self {
            PlanArtifact::F32(_) => "f32",
            PlanArtifact::I8(_) => "i8",
        }
    }

    /// The plan name.
    pub fn name(&self) -> &str {
        match self {
            PlanArtifact::F32(p) => p.name(),
            PlanArtifact::I8(p) => p.name(),
        }
    }

    /// Channels of the input stream.
    pub fn input_channels(&self) -> usize {
        match self {
            PlanArtifact::F32(p) => p.input_channels(),
            PlanArtifact::I8(p) => p.input_channels(),
        }
    }

    /// Width of one emitted output vector.
    pub fn output_dim(&self) -> usize {
        match self {
            PlanArtifact::F32(p) => p.output_dim(),
            PlanArtifact::I8(p) => p.output_dim(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile_temponet;
    use crate::{QuantizedSession, Session};
    use pit_models::{TempoNet, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use pit_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn searched_plan(seed: u64) -> InferencePlan {
        let cfg = TempoNetConfig::scaled(8, 64);
        let mut rng = StdRng::seed_from_u64(seed);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        compile_temponet(&net)
    }

    #[test]
    fn f32_artifact_roundtrip_preserves_outputs_exactly() {
        let plan = searched_plan(40);
        let text = plan.to_artifact_string();
        let loaded = InferencePlan::from_artifact_str(&text).unwrap();
        assert_eq!(loaded.name(), plan.name());
        assert_eq!(loaded.input_channels(), plan.input_channels());
        assert_eq!(loaded.output_dim(), plan.output_dim());
        assert_eq!(loaded.num_weights(), plan.num_weights());

        let mut rng = StdRng::seed_from_u64(41);
        let x = init::uniform(&mut rng, &[2, 4, 64], 1.0);
        let a = plan.forward(&x).unwrap();
        let b = loaded.forward(&x).unwrap();
        // Same weights bit-for-bit, same kernels: outputs are identical.
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn f32_artifact_rerender_is_byte_stable() {
        let plan = searched_plan(42);
        let text = plan.to_artifact_string();
        let loaded = InferencePlan::from_artifact_str(&text).unwrap();
        assert_eq!(loaded.to_artifact_string(), text);
    }

    #[test]
    fn i8_artifact_roundtrip_streams_bit_identically() {
        let plan = searched_plan(43);
        let mut rng = StdRng::seed_from_u64(44);
        let x = init::uniform(&mut rng, &[1, 4, 64], 1.0);
        let qplan = QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).unwrap();
        let text = qplan.to_artifact_string();
        let loaded = QuantizedPlan::from_artifact_str(&text).unwrap();
        assert_eq!(loaded.name(), qplan.name());
        assert_eq!(loaded.error_bound(), qplan.error_bound());
        assert_eq!(loaded.weight_bytes(), qplan.weight_bytes());
        assert_eq!(loaded.to_artifact_string(), text);

        let mut a = QuantizedSession::new(Arc::new(qplan));
        let mut b = QuantizedSession::new(Arc::new(loaded));
        let mut sample = [0.0f32; 4];
        for t in 0..64 {
            for (ci, slot) in sample.iter_mut().enumerate() {
                *slot = x.data()[ci * 64 + t];
            }
            assert_eq!(a.push(&sample), b.push(&sample), "step {t}");
        }
    }

    #[test]
    fn artifact_doubles_as_geometry_descriptor() {
        let plan = searched_plan(45);
        let text = plan.to_artifact_string();
        let desc = pit_models::NetworkDescriptor::from_json_str(&text).unwrap();
        assert_eq!(desc.name, plan.name());
        assert_eq!(
            desc.layers.len(),
            plan.descriptor(plan.receptive_field()).layers.len()
        );
    }

    #[test]
    fn plan_artifact_dispatches_on_kind() {
        let plan = searched_plan(46);
        let f32_text = plan.to_artifact_string();
        assert!(matches!(
            PlanArtifact::from_json_str(&f32_text).unwrap(),
            PlanArtifact::F32(_)
        ));
        let mut rng = StdRng::seed_from_u64(47);
        let x = init::uniform(&mut rng, &[1, 4, 64], 1.0);
        let qplan = QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).unwrap();
        let loaded = PlanArtifact::from_json_str(&qplan.to_artifact_string()).unwrap();
        assert_eq!(loaded.kind(), "i8");
        assert_eq!(loaded.input_channels(), 4);
        assert_eq!(loaded.output_dim(), 1);
    }

    #[test]
    fn v1_documents_get_a_pointed_error() {
        let plan = searched_plan(48);
        let v1 = plan.descriptor(64).to_json_string();
        let err = PlanArtifact::from_json_str(&v1).unwrap_err();
        assert!(err.contains("geometry only"), "{err}");
    }

    #[test]
    fn loaded_f32_plan_streams_like_the_original() {
        let plan = Arc::new(searched_plan(49));
        let loaded =
            Arc::new(InferencePlan::from_artifact_str(&plan.to_artifact_string()).unwrap());
        let mut a = Session::new(Arc::clone(&plan));
        let mut b = Session::new(loaded);
        for t in 0..32 {
            let sample = [t as f32 * 0.05, -0.1, 0.2, 0.3];
            assert_eq!(a.push(&sample), b.push(&sample));
        }
    }

    #[test]
    fn corrupt_payloads_error_instead_of_panicking() {
        let plan = searched_plan(50);
        let good = plan.to_artifact_string();

        // Bad base64 inside a weight payload.
        let bad_b64 = good.replacen("\"weight\": \"", "\"weight\": \"!!!!", 1);
        assert!(InferencePlan::from_artifact_str(&bad_b64)
            .unwrap_err()
            .contains("base64"));

        // Truncated payload: valid base64, wrong tensor length.
        let doc = Json::parse(&good).unwrap();
        let mutate_first_weight = |doc: &Json, new_payload: &str| -> String {
            let mut text = doc.render();
            let start = text.find("\"weight\": \"").unwrap() + "\"weight\": \"".len();
            let end = start + text[start..].find('"').unwrap();
            text.replace_range(start..end, new_payload);
            text
        };
        let short = mutate_first_weight(&doc, &pit_tensor::json::encode_f32s(&[1.0, 2.0]));
        let err = InferencePlan::from_artifact_str(&short).unwrap_err();
        assert!(err.contains("geometry needs"), "{err}");

        // Non-finite weight values.
        let nan = mutate_first_weight(&doc, &pit_tensor::json::encode_f32s(&[f32::NAN; 840]));
        let err = InferencePlan::from_artifact_str(&nan);
        // Either the length or the finiteness check trips; both are errors.
        assert!(err.is_err());

        // Wrong kind for the loader.
        assert!(QuantizedPlan::from_artifact_str(&good)
            .unwrap_err()
            .contains("kind"));

        // Unknown schema.
        let wrong_schema = good.replacen("pit-arch/2", "pit-arch/9", 1);
        assert!(InferencePlan::from_artifact_str(&wrong_schema).is_err());
    }

    #[test]
    fn overflowing_in_max_is_rejected() {
        // 1e39 is a finite f64 but overflows to f32 infinity; a loader that
        // let it through would serve NaN garbage instead of failing.
        let plan = searched_plan(54);
        let mut rng = StdRng::seed_from_u64(55);
        let x = init::uniform(&mut rng, &[1, 4, 64], 1.0);
        let qplan = QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).unwrap();
        let text = qplan.to_artifact_string();
        let start = text.find("\"in_max\": ").unwrap() + "\"in_max\": ".len();
        let end = start + text[start..].find([',', '\n']).unwrap();
        let mut bad = text.clone();
        bad.replace_range(start..end, "1e39");
        let err = QuantizedPlan::from_artifact_str(&bad).unwrap_err();
        assert!(err.contains("finite"), "{err}");
    }

    #[test]
    fn broken_channel_chain_is_rejected() {
        let plan = searched_plan(51);
        let doc = plan.to_artifact();
        // Lie about the input channel count: the first conv no longer chains.
        let Json::Obj(mut pairs) = doc else {
            panic!("artifact must be an object")
        };
        for (k, v) in &mut pairs {
            if k == "input_channels" {
                *v = Json::Num(7.0);
            }
        }
        let err = InferencePlan::from_artifact(&Json::Obj(pairs)).unwrap_err();
        assert!(err.contains("chain carries"), "{err}");
    }

    #[test]
    fn quantized_descriptor_matches_f32_geometry() {
        let plan = searched_plan(52);
        let mut rng = StdRng::seed_from_u64(53);
        let x = init::uniform(&mut rng, &[1, 4, 64], 1.0);
        let qplan = QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).unwrap();
        assert_eq!(qplan.receptive_field(), plan.receptive_field());
        let qd = qplan.descriptor(64);
        let fd = plan.descriptor(64);
        assert_eq!(qd.layers, fd.layers);
        assert_eq!(qd.total_macs(), fd.total_macs());
    }
}
