//! # pit-infer
//!
//! The streaming inference engine of the PIT reproduction: it **compiles** a
//! searched temporal convolutional network into a tape-free, deployable
//! serving plan and executes it statefully, per timestep, for many concurrent
//! streams.
//!
//! The PIT search's payoff (Risso et al., DAC 2021) is that the mask-trained
//! dense network collapses into a tiny, *truly dilated* TCN. Training-side
//! crates express that network through the autograd [`pit_tensor::Tape`];
//! this crate is the other half of the story — what actually serves traffic:
//!
//! * **Compile** ([`plan`]): binarised γ masks fold into real dilations (only
//!   alive taps stored, packed contiguously), batch normalisation fuses into
//!   convolution weights, and the result is an [`InferencePlan`] executed
//!   through the tiled kernels of [`pit_tensor::kernels`] — no tape, no
//!   gradient bookkeeping. Plans round-trip their geometry through
//!   [`pit_models::NetworkDescriptor`] JSON, so a searched architecture can
//!   be persisted and re-compiled without re-running the search.
//! * **Stream** ([`stream`]): a [`Session`] keeps one ring buffer per
//!   convolution (its receptive field), pool windows and the head state, so
//!   one new timestep costs `O(C_out · C_in · alive_taps)` — not a full
//!   window re-forward. Zero state ≡ causal zero padding: streaming a window
//!   sample-by-sample reproduces the offline forward to `1e-5`.
//! * **Serve** ([`session`]): a [`SessionPool`] batches the pending timesteps
//!   of N concurrent sessions into single GEMM calls per layer — N streams,
//!   one kernel invocation.
//! * **Quantize** ([`quant`]): [`Calibration`] records max-abs activation
//!   ranges per layer seam, [`QuantizedPlan`] lowers the plan to int8
//!   (per-output-channel weight scales, exact `i8×i8→i32` arithmetic) and
//!   [`QuantizedSession`] / [`QuantizedSessionPool`] stream it with `i8`
//!   ring state — ~4x smaller per stream, over 2x faster per step, and
//!   provably within [`QuantizedPlan::error_bound`] of the f32 engine.
//! * **Persist** ([`artifact`]): plans serialise *with their weights* as
//!   `pit-arch/2` JSON artifacts ([`InferencePlan::to_artifact`],
//!   [`QuantizedPlan::to_artifact`], base64 tensor payloads) and load back
//!   bit-identically ([`PlanArtifact::load`]) — the boot path of the
//!   `pit-serve` daemon, no model code or calibration data needed at serve
//!   time.
//! * **Library** ([`zoo`]): a whole searched Pareto front ships as one
//!   directory — artifact files plus a `pit-zoo/1` manifest
//!   ([`ZooManifest`]) naming each model and its size/accuracy metadata, the
//!   hand-off from `pit-search` to a multi-model daemon.
//!
//! ```
//! use pit_infer::{compile_generic, Session};
//! use pit_models::{GenericTcn, GenericTcnConfig};
//! use pit_nas::SearchableNetwork;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
//! net.set_dilations(&[4, 8]); // "the search result"
//! let plan = Arc::new(compile_generic(&net));
//! let mut session = Session::new(plan);
//! let out = session.push(&[0.5]).expect("per-step head emits every step");
//! assert_eq!(out.len(), 1);
//! ```

pub mod artifact;
pub mod plan;
pub mod quant;
pub mod session;
pub mod stream;
pub mod stream_pool;
pub mod zoo;

pub use artifact::{PlanArtifact, ARTIFACT_SCHEMA};
pub use plan::{
    compile_concrete, compile_generic, compile_restcn, compile_temponet, CompiledConv, Dense,
    InferencePlan, PlanBlock, PlanHead, PoolSpec,
};
pub use quant::{
    Calibration, QuantBlock, QuantHead, QuantizedConv, QuantizedDense, QuantizedPlan,
    QuantizedSession, QuantizedSessionPool,
};
pub use session::SessionPool;
pub use stream::Session;
pub use stream_pool::StreamPool;
pub use zoo::{ZooEntry, ZooManifest, ZOO_SCHEMA};
