//! Compiling searched networks into tape-free inference plans.
//!
//! A [`InferencePlan`] is the deployable form of a PIT search result: every
//! searchable convolution's binarised γ mask is folded into a *true* dilation
//! (only alive taps stored, via [`pit_nas::PitConv1d::export_pruned_weight`]),
//! batch normalisation is fused into the convolution weights, and the
//! remaining structure is a flat block list executed straight through the
//! tiled kernels of [`pit_tensor`] — no [`pit_tensor::Tape`], no gradient
//! bookkeeping, no per-op allocations beyond the output.
//!
//! Plans are built from any of the model families of `pit-models`
//! ([`compile_temponet`], [`compile_restcn`], [`compile_generic`],
//! [`compile_concrete`]) or — geometry only — from a persisted
//! [`NetworkDescriptor`] via [`InferencePlan::from_descriptor`].

use pit_models::{
    ConcreteBlock, ConcreteHead, ConcreteTcn, GenericTcn, LayerDesc, NetworkDescriptor, ResTcn,
    TempoNet,
};
use pit_nas::PitConv1d;
use pit_nn::layers::{BatchNorm1d, CausalConv1d, Linear};
use pit_tensor::{Result, Tensor};

/// A compiled causal convolution: only alive taps stored, mask and batch
/// norm already folded into the weights.
#[derive(Debug, Clone)]
pub struct CompiledConv {
    pub(crate) c_in: usize,
    pub(crate) c_out: usize,
    pub(crate) k: usize,
    pub(crate) dilation: usize,
    /// Weights `[C_out, C_in, K]` (row-major, so row `co` is the flat
    /// `[C_in · K]` vector used by the per-step kernel).
    pub(crate) weight: Tensor,
    /// The same weights transposed to `[C_in · K, C_out]` for the batched
    /// session GEMM (`x_rows · wt`).
    pub(crate) wt: Vec<f32>,
    /// Bias `[C_out]` (batch-norm shift folded in).
    pub(crate) bias: Tensor,
}

impl CompiledConv {
    /// Builds a compiled convolution from explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 3, has zero taps, or `bias` does not
    /// match `C_out`, or `dilation` is zero.
    pub fn new(weight: Tensor, bias: Tensor, dilation: usize) -> Self {
        assert_eq!(weight.dims().len(), 3, "weight must be [C_out, C_in, K]");
        assert!(dilation >= 1, "dilation must be >= 1");
        let (c_out, c_in, k) = (weight.dims()[0], weight.dims()[1], weight.dims()[2]);
        assert!(k >= 1, "kernel must keep at least one tap");
        assert_eq!(bias.dims(), [c_out], "bias must be [C_out]");
        let mut conv = Self {
            c_in,
            c_out,
            k,
            dilation,
            weight,
            wt: Vec::new(),
            bias,
        };
        conv.repack();
        conv
    }

    /// Compiles a searchable convolution: binarises γ, keeps only the taps
    /// alive under the encoded dilation and stores them contiguously.
    pub fn from_searchable(conv: &PitConv1d) -> Self {
        Self::new(
            conv.export_pruned_weight(),
            conv.bias_param().value(),
            conv.dilation(),
        )
    }

    /// Compiles a fixed-dilation convolution (a bias of zeros is synthesised
    /// when the layer has none).
    pub fn from_causal(conv: &CausalConv1d) -> Self {
        let bias = conv
            .bias()
            .map(|b| b.value())
            .unwrap_or_else(|| Tensor::zeros(&[conv.out_channels()]));
        Self::new(conv.weight().value(), bias, conv.dilation())
    }

    /// Folds an (inference-mode) batch normalisation into the weights and
    /// bias: `bn(conv(x)) = conv'(x)` with
    /// `w' = w · γ/√(σ²+ε)` and `b' = (b − μ) · γ/√(σ²+ε) + β`.
    ///
    /// # Panics
    ///
    /// Panics if the normalised channel count differs from `C_out`.
    pub fn fold_batchnorm(&mut self, bn: &BatchNorm1d) {
        assert_eq!(bn.channels(), self.c_out, "batch-norm channel mismatch");
        let gamma = bn.gamma().value();
        let beta = bn.beta().value();
        let mean = bn.running_mean();
        let var = bn.running_var();
        let eps = bn.eps();
        let ck = self.c_in * self.k;
        let mut w = self.weight.clone();
        let mut b = self.bias.clone();
        for co in 0..self.c_out {
            let scale = gamma.data()[co] / (var.data()[co] + eps).sqrt();
            for v in &mut w.data_mut()[co * ck..(co + 1) * ck] {
                *v *= scale;
            }
            b.data_mut()[co] = (b.data()[co] - mean.data()[co]) * scale + beta.data()[co];
        }
        self.weight = w;
        self.bias = b;
        self.repack();
    }

    /// Rebuilds the transposed `[C_in · K, C_out]` pack after a weight change.
    fn repack(&mut self) {
        let ck = self.c_in * self.k;
        let mut wt = vec![0.0f32; ck * self.c_out];
        for co in 0..self.c_out {
            for j in 0..ck {
                wt[j * self.c_out + co] = self.weight.data()[co * ck + j];
            }
        }
        self.wt = wt;
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.c_in
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.c_out
    }

    /// Stored (alive) taps.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Dilation between stored taps.
    pub fn dilation(&self) -> usize {
        self.dilation
    }

    /// Receptive field in input samples: `(K − 1) · d + 1`. This is the ring
    /// length a streaming session keeps for the layer.
    pub fn receptive_field(&self) -> usize {
        (self.k - 1) * self.dilation + 1
    }

    /// Number of stored weights (bias included).
    pub fn num_weights(&self) -> usize {
        self.c_out * self.c_in * self.k + self.c_out
    }

    /// Offline forward over a whole `[N, C_in, T]` window through the tiled
    /// convolution kernels.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    pub fn forward_offline(&self, x: &Tensor) -> Result<Tensor> {
        x.conv1d_causal(&self.weight, Some(&self.bias), self.dilation)
    }
}

/// A compiled dense layer `y = x · W + b` (weights `[in, out]`, as stored by
/// [`pit_nn::layers::Linear`]).
#[derive(Debug, Clone)]
pub struct Dense {
    pub(crate) in_features: usize,
    pub(crate) out_features: usize,
    /// Weights `[in_features, out_features]`.
    pub(crate) weight: Tensor,
    /// Bias `[out_features]`.
    pub(crate) bias: Tensor,
}

impl Dense {
    /// Builds a compiled dense layer from explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 2 or the bias length mismatches.
    pub fn new(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.dims().len(), 2, "weight must be [in, out]");
        let (in_features, out_features) = (weight.dims()[0], weight.dims()[1]);
        assert_eq!(bias.dims(), [out_features], "bias must be [out]");
        Self {
            in_features,
            out_features,
            weight,
            bias,
        }
    }

    /// Compiles a `pit-nn` dense layer.
    pub fn from_linear(layer: &Linear) -> Self {
        Self::new(layer.weight().value(), layer.bias().value())
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of stored weights (bias included).
    pub fn num_weights(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }

    /// Offline forward over a `[N, in_features]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    pub fn forward_offline(&self, x: &Tensor) -> Result<Tensor> {
        let mut y = x.matmul(&self.weight)?;
        let (n, out) = (y.dims()[0], self.out_features);
        for row in 0..n {
            for j in 0..out {
                y.data_mut()[row * out + j] += self.bias.data()[j];
            }
        }
        Ok(y)
    }
}

/// Average pooling geometry of a plan block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Pooling window.
    pub kernel: usize,
    /// Stride between windows.
    pub stride: usize,
}

/// One block of a compiled plan. ReLU activations are implicit: every
/// convolution inside a block is followed by one (matching the seed
/// networks); heads are linear.
// The variant size gap (Residual inlines three convs, Plain a Vec) is fine:
// blocks are built once per compile and held in a short Vec, never moved on
// a hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PlanBlock {
    /// Two convolutions with a skip connection (ResTCN-style); the skip adds
    /// before the block's final ReLU.
    Residual {
        /// First convolution.
        conv1: CompiledConv,
        /// Second convolution.
        conv2: CompiledConv,
        /// Optional 1×1 projection when channel counts differ on the skip.
        downsample: Option<CompiledConv>,
    },
    /// A feed-forward chain of convolutions (TEMPONet-style), optionally
    /// closed by average pooling over time.
    Plain {
        /// Convolutions, each followed by an implicit ReLU.
        convs: Vec<CompiledConv>,
        /// Optional pooling stage closing the block.
        pool: Option<PoolSpec>,
    },
}

/// The output head of a compiled plan.
#[derive(Debug, Clone)]
pub enum PlanHead {
    /// Per-time-step convolution producing one logit column per step.
    PerStep(CompiledConv),
    /// Flatten the last `window` steps of the final `channels`-wide feature
    /// map and run a two-layer MLP (TEMPONet-style regression head).
    Fc {
        /// Hidden dense layer (ReLU after it).
        hidden: Dense,
        /// Output dense layer (linear).
        output: Dense,
        /// Channels of the feature map feeding the head.
        channels: usize,
        /// Time steps flattened into the head input.
        window: usize,
    },
    /// Global average pooling over time followed by one dense layer
    /// (GenericTcn-style head). Streaming keeps a running mean.
    GlobalPoolFc(Dense),
}

/// A compiled, tape-free inference plan: the deployable form of a searched
/// TCN, executable offline over whole windows ([`InferencePlan::forward`]) or
/// per-timestep through [`crate::Session`] / [`crate::SessionPool`].
#[derive(Debug, Clone)]
pub struct InferencePlan {
    pub(crate) name: String,
    pub(crate) input_channels: usize,
    pub(crate) blocks: Vec<PlanBlock>,
    pub(crate) head: PlanHead,
}

impl InferencePlan {
    /// Assembles a plan from compiled parts.
    ///
    /// # Panics
    ///
    /// Panics when the parts do not chain: a convolution whose input channels
    /// differ from what the previous stage produces, a residual block whose
    /// skip path cannot add to its branch (no downsample despite a channel
    /// change, or a downsample with the wrong geometry), a pooling stage
    /// with a zero kernel or stride, or a head that does not match the final
    /// feature width. The streaming executor trusts these invariants, so
    /// they are enforced at build time rather than surfacing as silently
    /// wrong outputs (or counter underflows) per step.
    pub fn new(
        name: impl Into<String>,
        input_channels: usize,
        blocks: Vec<PlanBlock>,
        head: PlanHead,
    ) -> Self {
        let mut width = input_channels;
        for (i, block) in blocks.iter().enumerate() {
            match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    assert_eq!(conv1.c_in, width, "block {i}: conv1 input channels");
                    assert_eq!(conv2.c_in, conv1.c_out, "block {i}: conv2 input channels");
                    match downsample {
                        Some(ds) => {
                            assert_eq!(ds.c_in, width, "block {i}: downsample input channels");
                            assert_eq!(
                                ds.c_out, conv2.c_out,
                                "block {i}: downsample output channels"
                            );
                        }
                        None => assert_eq!(
                            width, conv2.c_out,
                            "block {i}: residual skip needs a downsample when channels change"
                        ),
                    }
                    width = conv2.c_out;
                }
                PlanBlock::Plain { convs, pool } => {
                    for (j, conv) in convs.iter().enumerate() {
                        assert_eq!(conv.c_in, width, "block {i} conv {j}: input channels");
                        width = conv.c_out;
                    }
                    if let Some(spec) = pool {
                        // The streaming pool clocks count in units of these;
                        // zero would underflow the emission countdown.
                        assert!(
                            spec.kernel >= 1 && spec.stride >= 1,
                            "block {i}: pooling kernel and stride must be >= 1"
                        );
                    }
                }
            }
        }
        match &head {
            PlanHead::PerStep(conv) => {
                assert_eq!(conv.c_in, width, "per-step head input channels");
            }
            PlanHead::Fc {
                hidden,
                output,
                channels,
                window,
            } => {
                assert_eq!(*channels, width, "fc head channels");
                assert_eq!(
                    hidden.in_features,
                    channels * window,
                    "fc head window flatten size"
                );
                assert_eq!(output.in_features, hidden.out_features, "fc head stack");
            }
            PlanHead::GlobalPoolFc(dense) => {
                assert_eq!(dense.in_features, width, "global-pool head features");
            }
        }
        Self {
            name: name.into(),
            input_channels,
            blocks,
            head,
        }
    }

    /// The plan name (carried over from the compiled network).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the plan under a new name. Model-zoo builders use this to
    /// give each searched point a unique registry name before writing its
    /// artifact (quantizing afterwards derives `<name>-int8`).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Channels of the input stream.
    pub fn input_channels(&self) -> usize {
        self.input_channels
    }

    /// The compiled blocks in execution order.
    pub fn blocks(&self) -> &[PlanBlock] {
        &self.blocks
    }

    /// The compiled head.
    pub fn head(&self) -> &PlanHead {
        &self.head
    }

    /// Width of one emitted output vector.
    pub fn output_dim(&self) -> usize {
        match &self.head {
            PlanHead::PerStep(conv) => conv.c_out,
            PlanHead::Fc { output, .. } => output.out_features,
            PlanHead::GlobalPoolFc(dense) => dense.out_features,
        }
    }

    /// Every convolution of the plan, blocks first then a per-step head.
    fn convs(&self) -> Vec<&CompiledConv> {
        let mut out = Vec::new();
        for block in &self.blocks {
            match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    out.push(conv1);
                    out.push(conv2);
                    if let Some(ds) = downsample {
                        out.push(ds);
                    }
                }
                PlanBlock::Plain { convs, .. } => out.extend(convs.iter()),
            }
        }
        if let PlanHead::PerStep(conv) = &self.head {
            out.push(conv);
        }
        out
    }

    /// Total stored weights of the plan (what deployment ships).
    pub fn num_weights(&self) -> usize {
        let conv_w: usize = self.convs().iter().map(|c| c.num_weights()).sum();
        let head_w = match &self.head {
            PlanHead::PerStep(_) => 0, // already counted through convs()
            PlanHead::Fc { hidden, output, .. } => hidden.num_weights() + output.num_weights(),
            PlanHead::GlobalPoolFc(dense) => dense.num_weights(),
        };
        conv_w + head_w
    }

    /// `f32` slots one streaming [`crate::Session`] keeps as state: the conv
    /// ring buffers (each layer's receptive field), pool windows and the head
    /// window/running mean. This is the per-stream serving memory footprint.
    pub fn session_state_floats(&self) -> usize {
        let mut total = 0usize;
        for block in &self.blocks {
            match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    total += conv1.c_in * conv1.receptive_field();
                    total += conv2.c_in * conv2.receptive_field();
                    if let Some(ds) = downsample {
                        total += ds.c_in * ds.receptive_field();
                    }
                }
                PlanBlock::Plain { convs, pool } => {
                    total += convs
                        .iter()
                        .map(|c| c.c_in * c.receptive_field())
                        .sum::<usize>();
                    if let (Some(spec), Some(last)) = (pool, convs.last()) {
                        total += last.c_out * spec.kernel;
                    }
                }
            }
        }
        total += match &self.head {
            PlanHead::PerStep(conv) => conv.c_in * conv.receptive_field(),
            PlanHead::Fc {
                channels, window, ..
            } => channels * window,
            PlanHead::GlobalPoolFc(dense) => dense.in_features,
        };
        total
    }

    /// Receptive field of the conv/pool stack in input samples: how much
    /// history influences one head input column (standard jump/receptive-field
    /// composition; the Fc head window extends it further at the pooled rate).
    pub fn receptive_field(&self) -> usize {
        let mut rf = 1usize;
        let mut jump = 1usize;
        let mut grow = |k: usize, d: usize, j: usize| {
            rf += (k - 1) * d * j;
        };
        for block in &self.blocks {
            match block {
                PlanBlock::Residual { conv1, conv2, .. } => {
                    grow(conv1.k, conv1.dilation, jump);
                    grow(conv2.k, conv2.dilation, jump);
                }
                PlanBlock::Plain { convs, pool } => {
                    for conv in convs {
                        grow(conv.k, conv.dilation, jump);
                    }
                    if let Some(spec) = pool {
                        grow(spec.kernel, 1, jump);
                        jump *= spec.stride;
                    }
                }
            }
        }
        if let PlanHead::PerStep(conv) = &self.head {
            grow(conv.k, conv.dilation, jump);
        }
        rf
    }

    /// Offline forward over a whole `[N, C_in, T]` window, tape-free.
    ///
    /// Matches the evaluation-mode forward of the network the plan was
    /// compiled from (dropout is identity, batch norm uses running stats —
    /// both already folded away here).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches (wrong channel count, or a window
    /// shorter than a pooling stage needs).
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        self.forward_seams(x, &mut |_, _| {})
    }

    /// Number of quantization seams of the plan: one per convolution, dense
    /// layer or pooling-stage input, in the fixed order
    /// [`InferencePlan::forward_seams`] observes them. This is the length of
    /// a calibration record.
    pub fn num_seams(&self) -> usize {
        let mut seams = 0usize;
        for block in &self.blocks {
            seams += match block {
                PlanBlock::Residual { downsample, .. } => 2 + usize::from(downsample.is_some()),
                PlanBlock::Plain { convs, pool } => convs.len() + usize::from(pool.is_some()),
            };
        }
        seams
            + match &self.head {
                PlanHead::PerStep(_) | PlanHead::GlobalPoolFc(_) => 1,
                PlanHead::Fc { .. } => 2,
            }
    }

    /// [`InferencePlan::forward`] with an observer called once per
    /// quantization *seam* — the tensor a layer reads, right before the
    /// layer executes. This is the calibration hook of the int8 path: a
    /// max-abs observer per seam yields the activation scales a
    /// [`crate::QuantizedPlan`] quantizes with.
    ///
    /// Seam order (stable; indices are `0..self.num_seams()`):
    ///
    /// * per block, in block order — residual: `conv1` input, `conv2` input,
    ///   then the `downsample` input (the block input again) when present;
    ///   plain: each convolution's input in chain order, then the pooling
    ///   stage's input when the block pools (the int8 engine keeps pool
    ///   windows quantized too);
    /// * head — per-step: the head convolution's input; `Fc`: the *unpooled*
    ///   feature map feeding the flatten (covering every window position a
    ///   streaming session will ever flatten), then the hidden activations
    ///   feeding the output layer; `GlobalPoolFc`: the feature map *before*
    ///   the global average (a running streaming mean over any prefix is
    ///   bounded by the columns it averages, so calibrating pre-pool covers
    ///   mid-stream emissions too).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches, as [`InferencePlan::forward`].
    pub fn forward_seams(
        &self,
        x: &Tensor,
        observe: &mut dyn FnMut(usize, &Tensor),
    ) -> Result<Tensor> {
        let relu = |t: Tensor| t.map(|v| v.max(0.0));
        let mut seam = 0usize;
        let mut x = x.clone();
        for block in &self.blocks {
            x = match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    observe(seam, &x);
                    seam += 1;
                    let h = relu(conv1.forward_offline(&x)?);
                    observe(seam, &h);
                    seam += 1;
                    let h = relu(conv2.forward_offline(&h)?);
                    let skip = match downsample {
                        Some(ds) => {
                            observe(seam, &x);
                            seam += 1;
                            ds.forward_offline(&x)?
                        }
                        None => x,
                    };
                    relu(h.add(&skip)?)
                }
                PlanBlock::Plain { convs, pool } => {
                    let mut h = x;
                    for conv in convs {
                        observe(seam, &h);
                        seam += 1;
                        h = relu(conv.forward_offline(&h)?);
                    }
                    match pool {
                        Some(spec) => {
                            observe(seam, &h);
                            seam += 1;
                            h.avg_pool1d(spec.kernel, spec.stride)?
                        }
                        None => h,
                    }
                }
            };
        }
        match &self.head {
            PlanHead::PerStep(conv) => {
                observe(seam, &x);
                conv.forward_offline(&x)
            }
            PlanHead::Fc { hidden, output, .. } => {
                observe(seam, &x);
                seam += 1;
                let (n, c, t) = (x.dims()[0], x.dims()[1], x.dims()[2]);
                let flat = x.reshape(&[n, c * t])?;
                let h = relu(hidden.forward_offline(&flat)?);
                observe(seam, &h);
                output.forward_offline(&h)
            }
            PlanHead::GlobalPoolFc(dense) => {
                observe(seam, &x);
                let (n, c, t) = (x.dims()[0], x.dims()[1], x.dims()[2]);
                let mut pooled = Tensor::zeros(&[n, c]);
                for bn in 0..n {
                    for cc in 0..c {
                        let row = &x.data()[(bn * c + cc) * t..(bn * c + cc + 1) * t];
                        pooled.data_mut()[bn * c + cc] = row.iter().sum::<f32>() / t.max(1) as f32;
                    }
                }
                dense.forward_offline(&pooled)
            }
        }
    }

    /// Exports the plan geometry as a [`NetworkDescriptor`] for an input of
    /// length `t_in` — the persistence seam: render it with
    /// [`NetworkDescriptor::to_json_string`] and, for sequential plans,
    /// rebuild the structure later with [`InferencePlan::from_descriptor`].
    ///
    /// Descriptors are a flat layer list (the `pit-arch/1` schema carries no
    /// skip edges), so a plan whose residual block uses a `downsample`
    /// projection exports a descriptor that is still correct for weight/MAC
    /// accounting and `pit-hw` deployment modelling, but that
    /// `from_descriptor` will *reject* rather than rebuild with broken
    /// channel chaining.
    pub fn descriptor(&self, t_in: usize) -> NetworkDescriptor {
        let mut d = NetworkDescriptor::new(self.name.clone());
        let mut t = t_in;
        let conv_desc = |conv: &CompiledConv, t: usize| LayerDesc::Conv1d {
            c_in: conv.c_in,
            c_out: conv.c_out,
            kernel: conv.k,
            dilation: conv.dilation,
            t_in: t,
            t_out: t,
        };
        for block in &self.blocks {
            match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    d.push(conv_desc(conv1, t));
                    d.push(conv_desc(conv2, t));
                    if let Some(ds) = downsample {
                        d.push(conv_desc(ds, t));
                    }
                }
                PlanBlock::Plain { convs, pool } => {
                    for conv in convs {
                        d.push(conv_desc(conv, t));
                    }
                    if let Some(spec) = pool {
                        let t_out = (t.saturating_sub(spec.kernel)) / spec.stride + 1;
                        let channels = convs.last().map(|c| c.c_out).unwrap_or(0);
                        d.push(LayerDesc::AvgPool {
                            channels,
                            kernel: spec.kernel,
                            stride: spec.stride,
                            t_in: t,
                            t_out,
                        });
                        t = t_out;
                    }
                }
            }
        }
        match &self.head {
            PlanHead::PerStep(conv) => d.push(conv_desc(conv, t)),
            PlanHead::Fc { hidden, output, .. } => {
                d.push(LayerDesc::Linear {
                    in_features: hidden.in_features,
                    out_features: hidden.out_features,
                });
                d.push(LayerDesc::Linear {
                    in_features: output.in_features,
                    out_features: output.out_features,
                });
            }
            PlanHead::GlobalPoolFc(dense) => d.push(LayerDesc::Linear {
                in_features: dense.in_features,
                out_features: dense.out_features,
            }),
        }
        d
    }

    /// Rebuilds a plan's *geometry* from a persisted descriptor: convolutions
    /// and dense layers come back zero-weighted (descriptors carry no
    /// weights), batch-norm entries are treated as folded (skipped), and the
    /// layers are replayed as a sequential `Plain` chain. The head is
    /// inferred from the tail: two trailing linears → [`PlanHead::Fc`], one →
    /// [`PlanHead::GlobalPoolFc`], none → the final convolution as
    /// [`PlanHead::PerStep`].
    ///
    /// Useful for capacity planning, latency modelling and shape validation
    /// of a searched architecture without re-running the search.
    ///
    /// Descriptors flatten skip connections, so a descriptor that interleaves
    /// residual *projection* convolutions into the chain (ResTcn-style
    /// `downsample` layers, whose input channels don't continue the chain) is
    /// rejected rather than silently rebuilt with the wrong geometry.
    ///
    /// # Errors
    ///
    /// Returns a message when the descriptor holds no convolution, contains a
    /// degenerate layer (zero channels/kernel/dilation), breaks the channel
    /// chain (flattened skip projections), interleaves layers in an
    /// unsupported order, or ends with more than two linears.
    pub fn from_descriptor(d: &NetworkDescriptor) -> std::result::Result<Self, String> {
        let mut blocks: Vec<PlanBlock> = Vec::new();
        let mut convs: Vec<CompiledConv> = Vec::new();
        let mut linears: Vec<Dense> = Vec::new();
        let mut input_channels = None;
        let mut chain_channels: Option<usize> = None;
        for (i, layer) in d.layers.iter().enumerate() {
            match layer {
                LayerDesc::Conv1d {
                    c_in,
                    c_out,
                    kernel,
                    dilation,
                    ..
                } => {
                    if !linears.is_empty() {
                        return Err(format!("layer {i}: convolution after a linear layer"));
                    }
                    if *c_in == 0 || *c_out == 0 || *kernel == 0 || *dilation == 0 {
                        return Err(format!(
                            "layer {i}: degenerate convolution \
                             (c_in {c_in}, c_out {c_out}, kernel {kernel}, dilation {dilation})"
                        ));
                    }
                    if let Some(prev) = chain_channels {
                        if prev != *c_in {
                            return Err(format!(
                                "layer {i}: convolution expects {c_in} input channels but the \
                                 chain carries {prev} — likely a flattened residual skip \
                                 projection, which a sequential plan cannot represent"
                            ));
                        }
                    }
                    chain_channels = Some(*c_out);
                    input_channels.get_or_insert(*c_in);
                    convs.push(CompiledConv::new(
                        Tensor::zeros(&[*c_out, *c_in, *kernel]),
                        Tensor::zeros(&[*c_out]),
                        *dilation,
                    ));
                }
                LayerDesc::BatchNorm { .. } => {} // folded at compile time
                LayerDesc::AvgPool { kernel, stride, .. } => {
                    if convs.is_empty() {
                        return Err(format!("layer {i}: pooling with no preceding convolution"));
                    }
                    if *kernel == 0 || *stride == 0 {
                        return Err(format!(
                            "layer {i}: degenerate pooling (kernel {kernel}, stride {stride})"
                        ));
                    }
                    blocks.push(PlanBlock::Plain {
                        convs: std::mem::take(&mut convs),
                        pool: Some(PoolSpec {
                            kernel: *kernel,
                            stride: *stride,
                        }),
                    });
                }
                LayerDesc::Linear {
                    in_features,
                    out_features,
                } => linears.push(Dense::new(
                    Tensor::zeros(&[*in_features, *out_features]),
                    Tensor::zeros(&[*out_features]),
                )),
            }
        }
        let head = match linears.len() {
            0 => {
                let head_conv = convs
                    .pop()
                    .ok_or("descriptor has no convolution to use as a per-step head")?;
                PlanHead::PerStep(head_conv)
            }
            1 => {
                let dense = linears.pop().expect("one linear");
                if Some(dense.in_features) != chain_channels {
                    return Err(format!(
                        "head linear expects {} features but the chain carries {:?}",
                        dense.in_features, chain_channels
                    ));
                }
                PlanHead::GlobalPoolFc(dense)
            }
            2 => {
                let output = linears.pop().expect("two linears");
                let hidden = linears.pop().expect("two linears");
                if output.in_features != hidden.out_features {
                    return Err(format!(
                        "head linears do not stack: hidden produces {} features, \
                         output expects {}",
                        hidden.out_features, output.in_features
                    ));
                }
                // Channels feeding the head: the trailing (un-pooled) convs
                // first, then the last already-closed block.
                let channels = convs
                    .last()
                    .map(|c| c.c_out)
                    .or_else(|| {
                        blocks.iter().rev().find_map(|b| match b {
                            PlanBlock::Plain { convs, .. } => convs.last().map(|c| c.c_out),
                            PlanBlock::Residual { conv2, .. } => Some(conv2.c_out),
                        })
                    })
                    .ok_or("descriptor has linears but no convolution")?;
                if channels == 0 || !hidden.in_features.is_multiple_of(channels) {
                    return Err(format!(
                        "head in_features {} not a multiple of final channels {channels}",
                        hidden.in_features
                    ));
                }
                let window = hidden.in_features / channels;
                PlanHead::Fc {
                    hidden,
                    output,
                    channels,
                    window,
                }
            }
            n => return Err(format!("descriptor ends with {n} linear layers (max 2)")),
        };
        if !convs.is_empty() {
            blocks.push(PlanBlock::Plain { convs, pool: None });
        }
        let input_channels = input_channels.ok_or("descriptor contains no convolution layers")?;
        // The chain checks above guarantee `InferencePlan::new`'s invariants,
        // so this cannot panic for inputs that reached this point.
        Ok(Self::new(d.name.clone(), input_channels, blocks, head))
    }
}

// ---------------------------------------------------------------------------
// Compilers
// ---------------------------------------------------------------------------

/// Compiles a searched TEMPONet: γ masks fold into true dilations, every
/// batch norm fuses into its convolution (inference mode, running stats).
pub fn compile_temponet(net: &TempoNet) -> InferencePlan {
    let mut blocks = Vec::new();
    for view in net.block_views() {
        let mut convs = Vec::with_capacity(view.convs.len());
        for (conv, norm) in view.convs.iter().zip(view.norms.iter()) {
            let mut cc = CompiledConv::from_searchable(conv);
            cc.fold_batchnorm(norm);
            convs.push(cc);
        }
        blocks.push(PlanBlock::Plain {
            convs,
            pool: Some(PoolSpec {
                kernel: view.pool.kernel(),
                stride: view.pool.stride(),
            }),
        });
    }
    let (hidden, output) = net.fc_layers();
    let channels = *net.config().channels.last().expect("seven channel counts");
    let hidden = Dense::from_linear(hidden);
    let window = hidden.in_features / channels;
    InferencePlan::new(
        "TEMPONet-plan",
        net.config().input_channels,
        blocks,
        PlanHead::Fc {
            hidden,
            output: Dense::from_linear(output),
            channels,
            window,
        },
    )
}

/// Compiles a searched ResTCN into residual plan blocks with a per-time-step
/// head.
pub fn compile_restcn(net: &ResTcn) -> InferencePlan {
    let blocks = net
        .block_views()
        .into_iter()
        .map(|view| PlanBlock::Residual {
            conv1: CompiledConv::from_searchable(view.conv1),
            conv2: CompiledConv::from_searchable(view.conv2),
            downsample: view.downsample.map(CompiledConv::from_causal),
        })
        .collect();
    InferencePlan::new(
        "ResTCN-plan",
        net.config().input_channels,
        blocks,
        PlanHead::PerStep(CompiledConv::from_causal(net.head())),
    )
}

/// Compiles a searched [`GenericTcn`] (conv chain → global average pool →
/// linear head).
pub fn compile_generic(net: &GenericTcn) -> InferencePlan {
    let convs = net
        .conv_layers()
        .iter()
        .map(CompiledConv::from_searchable)
        .collect();
    InferencePlan::new(
        "GenericTcn-plan",
        net.config().input_channels,
        vec![PlanBlock::Plain { convs, pool: None }],
        PlanHead::GlobalPoolFc(Dense::from_linear(net.head())),
    )
}

/// Compiles an already-concrete (truly dilated) network; batch norms fold
/// with their running statistics, dropout disappears (identity at inference).
pub fn compile_concrete(net: &ConcreteTcn) -> InferencePlan {
    let blocks: Vec<PlanBlock> = net
        .blocks()
        .iter()
        .map(|block| match block {
            ConcreteBlock::Residual {
                conv1,
                conv2,
                downsample,
                ..
            } => PlanBlock::Residual {
                conv1: CompiledConv::from_causal(conv1),
                conv2: CompiledConv::from_causal(conv2),
                downsample: downsample.as_ref().map(CompiledConv::from_causal),
            },
            ConcreteBlock::Plain { convs, norms, pool } => {
                let convs = convs
                    .iter()
                    .zip(norms.iter())
                    .map(|(conv, norm)| {
                        let mut cc = CompiledConv::from_causal(conv);
                        cc.fold_batchnorm(norm);
                        cc
                    })
                    .collect();
                PlanBlock::Plain {
                    convs,
                    pool: pool.map(|p| PoolSpec {
                        kernel: p.kernel(),
                        stride: p.stride(),
                    }),
                }
            }
        })
        .collect();
    let input_channels = blocks
        .first()
        .map(|b| match b {
            PlanBlock::Residual { conv1, .. } => conv1.c_in,
            PlanBlock::Plain { convs, .. } => convs.first().map(|c| c.c_in).unwrap_or(0),
        })
        .unwrap_or(0);
    let final_channels = blocks
        .iter()
        .rev()
        .find_map(|b| match b {
            PlanBlock::Residual { conv2, .. } => Some(conv2.c_out),
            PlanBlock::Plain { convs, .. } => convs.last().map(|c| c.c_out),
        })
        .unwrap_or(input_channels);
    let head = match net.head() {
        ConcreteHead::PerStep(conv) => PlanHead::PerStep(CompiledConv::from_causal(conv)),
        ConcreteHead::Fc { hidden, output } => {
            let hidden = Dense::from_linear(hidden);
            let window = hidden.in_features / final_channels.max(1);
            PlanHead::Fc {
                hidden,
                output: Dense::from_linear(output),
                channels: final_channels,
                window,
            }
        }
    };
    InferencePlan::new(format!("{}-plan", net.name()), input_channels, blocks, head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_models::{GenericTcnConfig, ResTcnConfig, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use pit_nn::{Layer, Mode};
    use pit_tensor::{init, Tape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compiled_conv_matches_masked_searchable_layer() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = PitConv1d::new(&mut rng, 3, 5, 9, "c");
        conv.set_dilation(4);
        let compiled = CompiledConv::from_searchable(&conv);
        assert_eq!(compiled.kernel(), 3); // (9-1)/4 + 1
        assert_eq!(compiled.dilation(), 4);
        assert_eq!(compiled.receptive_field(), 9);

        let x = init::uniform(&mut rng, &[2, 3, 20], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let masked = conv.forward(&mut tape, vx, Mode::Eval);
        let plan_out = compiled.forward_offline(&x).unwrap();
        assert!(tape.value(masked).approx_eq(&plan_out, 1e-5));
    }

    #[test]
    fn batchnorm_folding_matches_eval_composition() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = PitConv1d::new(&mut rng, 2, 4, 5, "c");
        let bn = BatchNorm1d::new(4);
        // Move the running stats off their defaults so the fold is nontrivial.
        let mut tape = Tape::new();
        let warm = tape.constant(init::uniform(&mut rng, &[4, 4, 16], 2.0));
        let _ = bn.forward(&mut tape, warm, Mode::Train);

        let x = init::uniform(&mut rng, &[2, 2, 12], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let h = conv.forward(&mut tape, vx, Mode::Eval);
        let reference = bn.forward(&mut tape, h, Mode::Eval);

        let mut compiled = CompiledConv::from_searchable(&conv);
        compiled.fold_batchnorm(&bn);
        let folded = compiled.forward_offline(&x).unwrap();
        assert!(tape.value(reference).approx_eq(&folded, 1e-5));
    }

    #[test]
    fn temponet_plan_matches_eval_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TempoNetConfig::scaled(8, 64);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        // Warm the batch-norm running statistics.
        let mut tape = Tape::new();
        let warm = tape.constant(init::uniform(&mut rng, &[4, 4, 64], 1.0));
        let _ = net.forward(&mut tape, warm, Mode::Train);

        let x = init::uniform(&mut rng, &[3, 4, 64], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let reference = net.forward(&mut tape, vx, Mode::Eval);

        let plan = compile_temponet(&net);
        let out = plan.forward(&x).unwrap();
        assert_eq!(out.dims(), &[3, 1]);
        assert!(tape.value(reference).approx_eq(&out, 1e-4));
        // The plan stores only alive taps: strictly fewer weights than the
        // dense searchable network (which keeps masked taps and gammas).
        assert!(plan.num_weights() < net.num_weights());
    }

    #[test]
    fn restcn_plan_matches_eval_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ResTcnConfig {
            hidden_channels: 8,
            input_channels: 6,
            output_channels: 6,
            dropout: 0.0,
            ..ResTcnConfig::paper()
        };
        let net = ResTcn::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        let x = init::uniform(&mut rng, &[2, 6, 24], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let reference = net.forward(&mut tape, vx, Mode::Eval);
        let plan = compile_restcn(&net);
        let out = plan.forward(&x).unwrap();
        assert_eq!(out.dims(), &[2, 6, 24]);
        assert!(tape.value(reference).approx_eq(&out, 1e-4));
    }

    #[test]
    fn generic_plan_matches_eval_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        net.set_dilations(&[4, 8]);
        let x = init::uniform(&mut rng, &[2, 1, 32], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let reference = net.forward(&mut tape, vx, Mode::Eval);
        let plan = compile_generic(&net);
        let out = plan.forward(&x).unwrap();
        assert!(tape.value(reference).approx_eq(&out, 1e-5));
    }

    #[test]
    fn concrete_plan_matches_eval_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TempoNetConfig::scaled(8, 64);
        let concrete = TempoNet::concrete(&mut rng, &cfg, &cfg.hand_tuned_dilations());
        let x = init::uniform(&mut rng, &[2, 4, 64], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let reference = concrete.forward(&mut tape, vx, Mode::Eval);
        let plan = compile_concrete(&concrete);
        let out = plan.forward(&x).unwrap();
        assert!(tape.value(reference).approx_eq(&out, 1e-4));
    }

    #[test]
    fn descriptor_roundtrip_preserves_geometry() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = TempoNetConfig::scaled(8, 64);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        let plan = compile_temponet(&net);
        let desc = plan.descriptor(64);
        let text = desc.to_json_string();
        let parsed = NetworkDescriptor::from_json_str(&text).unwrap();
        let rebuilt = InferencePlan::from_descriptor(&parsed).unwrap();
        assert_eq!(rebuilt.input_channels(), plan.input_channels());
        assert_eq!(rebuilt.output_dim(), plan.output_dim());
        assert_eq!(rebuilt.blocks().len(), plan.blocks().len());
        assert_eq!(rebuilt.receptive_field(), plan.receptive_field());
        // Zero weights, same geometry: a [1, C, 64] window must flow through.
        let out = rebuilt.forward(&Tensor::zeros(&[1, 4, 64])).unwrap();
        assert_eq!(out.dims(), &[1, 1]);
    }

    #[test]
    fn from_descriptor_rejects_malformed_documents() {
        let empty = NetworkDescriptor::new("empty");
        assert!(InferencePlan::from_descriptor(&empty).is_err());
        let mut linear_only = NetworkDescriptor::new("lin");
        linear_only.push(LayerDesc::Linear {
            in_features: 4,
            out_features: 2,
        });
        assert!(InferencePlan::from_descriptor(&linear_only).is_err());
        let mut degenerate = NetworkDescriptor::new("deg");
        degenerate.push(LayerDesc::Conv1d {
            c_in: 2,
            c_out: 2,
            kernel: 0,
            dilation: 1,
            t_in: 8,
            t_out: 8,
        });
        let err = InferencePlan::from_descriptor(&degenerate).unwrap_err();
        assert!(err.contains("degenerate"), "{err}");
    }

    #[test]
    fn from_descriptor_rejects_degenerate_pooling() {
        let mut d = NetworkDescriptor::new("zp");
        d.push(LayerDesc::Conv1d {
            c_in: 2,
            c_out: 2,
            kernel: 1,
            dilation: 1,
            t_in: 8,
            t_out: 8,
        });
        d.push(LayerDesc::AvgPool {
            channels: 2,
            kernel: 2,
            stride: 0,
            t_in: 8,
            t_out: 8,
        });
        d.push(LayerDesc::Conv1d {
            c_in: 2,
            c_out: 1,
            kernel: 1,
            dilation: 1,
            t_in: 8,
            t_out: 8,
        });
        let err = InferencePlan::from_descriptor(&d).unwrap_err();
        assert!(err.contains("degenerate pooling"), "{err}");
    }

    #[test]
    #[should_panic(expected = "pooling kernel and stride")]
    fn zero_stride_pool_refuses_to_build() {
        // The streaming pool clock counts in stride units; a zero stride
        // must fail at build time, not underflow a counter mid-stream.
        let conv = CompiledConv::new(Tensor::zeros(&[2, 2, 1]), Tensor::zeros(&[2]), 1);
        let _ = InferencePlan::new(
            "bad-pool",
            2,
            vec![PlanBlock::Plain {
                convs: vec![conv.clone()],
                pool: Some(PoolSpec {
                    kernel: 2,
                    stride: 0,
                }),
            }],
            PlanHead::PerStep(conv),
        );
    }

    #[test]
    #[should_panic(expected = "downsample")]
    fn residual_channel_mismatch_without_downsample_panics() {
        // Streaming trusts the plan invariants, so a residual block whose
        // skip cannot add to its branch must refuse to build (the offline
        // path would error at runtime; a session would otherwise silently
        // emit garbage).
        let conv = |c_in: usize, c_out: usize| {
            CompiledConv::new(Tensor::zeros(&[c_out, c_in, 3]), Tensor::zeros(&[c_out]), 1)
        };
        let _ = InferencePlan::new(
            "bad",
            4,
            vec![PlanBlock::Residual {
                conv1: conv(4, 8),
                conv2: conv(8, 8),
                downsample: None,
            }],
            PlanHead::PerStep(conv(8, 2)),
        );
    }

    #[test]
    fn from_descriptor_rejects_flattened_skip_projections() {
        // ResTcn descriptors interleave the 1x1 downsample projections into
        // the layer list; a sequential plan cannot represent them, and must
        // say so instead of rebuilding with broken channel counts.
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = ResTcnConfig {
            hidden_channels: 8,
            input_channels: 5,
            output_channels: 5,
            ..ResTcnConfig::paper()
        };
        let net = ResTcn::new(&mut rng, &cfg);
        let err = InferencePlan::from_descriptor(&net.descriptor(24)).unwrap_err();
        assert!(err.contains("skip"), "{err}");
    }

    #[test]
    fn state_floats_and_receptive_field_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = TempoNetConfig::scaled(8, 64);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        let plan = compile_temponet(&net);
        // State is bounded by (weights are the dominant cost, state is
        // per-stream and small).
        assert!(plan.session_state_floats() > 0);
        assert!(plan.session_state_floats() < plan.num_weights());
        assert!(plan.receptive_field() > 1);
    }
}
