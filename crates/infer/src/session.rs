//! Batch-of-sessions serving: many concurrent streams, one kernel call.
//!
//! A [`SessionPool`] owns N independent [`Session`]s plus per-session queues
//! of pending samples. [`SessionPool::flush`] drains the queues in *waves*:
//! every session with a pending sample contributes one timestep, and the
//! whole wave moves through the plan layer by layer — each convolution is a
//! single `[N, C_in·K] × [C_in·K, C_out]` GEMM through
//! [`pit_tensor::kernels::gemm`] instead of N tiny per-session dot-product
//! loops. Strided pooling gates sessions independently (each keeps its own
//! phase), so a wave simply narrows as it descends past a pool that did not
//! fire for some streams.
//!
//! This is the serving story of the crate: N live streams (PPG wearables,
//! audio channels, …) → one batched kernel invocation per layer per wave,
//! with all scratch owned by the pool and reused across flushes.

use crate::plan::{CompiledConv, Dense, InferencePlan, PlanBlock, PlanHead};
use crate::stream::{
    gather_fc_window, push_fc_window, relu_in_place, scratch_widths, BlockState, HeadState, Session,
};
use pit_tensor::kernels::gemm;
use std::collections::VecDeque;
use std::sync::Arc;

/// A pool of concurrent streaming sessions executed in batched waves.
///
/// Streams have a lifecycle: [`SessionPool::new`] pre-opens a fixed count,
/// and a serving front end grows/shrinks the live set with
/// [`SessionPool::open_stream`] / [`SessionPool::close_stream`] — closing
/// resets the slot and recycles it, so a long-running server's pool does not
/// grow with connection churn.
pub struct SessionPool {
    plan: Arc<InferencePlan>,
    sessions: Vec<Session>,
    /// Pending samples per session, flattened (`input_channels` floats each).
    queues: Vec<VecDeque<f32>>,
    /// Whether each slot currently belongs to a live stream.
    open: Vec<bool>,
    /// Closed slots available for reuse by [`SessionPool::open_stream`].
    free: Vec<usize>,
    // Per-session scratch widths, kept so open_stream can grow the wave
    // buffers past the initial session count.
    col_w: usize,
    row_w: usize,
    feat_w: usize,
    hid_w: usize,
    // Wave scratch, reused across flushes.
    active: Vec<usize>,
    cur: Vec<f32>,
    nxt: Vec<f32>,
    skip: Vec<f32>,
    xrows: Vec<f32>,
    feats: Vec<f32>,
    hid: Vec<f32>,
}

impl SessionPool {
    /// Creates a pool of `sessions` fresh (already open) streams over one
    /// shared plan. Pass `0` to start empty and open streams on demand.
    pub fn new(plan: Arc<InferencePlan>, sessions: usize) -> Self {
        let (width, row) = scratch_widths(&plan);
        let width = width.max(plan.output_dim());
        let (feat_len, hid_len) = match plan.head() {
            PlanHead::Fc { hidden, .. } => (hidden.in_features(), hidden.out_features()),
            PlanHead::GlobalPoolFc(dense) => (dense.in_features(), 0),
            PlanHead::PerStep(_) => (0, 0),
        };
        Self {
            sessions: (0..sessions)
                .map(|_| Session::new(Arc::clone(&plan)))
                .collect(),
            queues: (0..sessions).map(|_| VecDeque::new()).collect(),
            open: vec![true; sessions],
            free: Vec::new(),
            plan,
            col_w: width.max(1),
            row_w: row.max(1),
            feat_w: feat_len.max(1),
            hid_w: hid_len.max(1),
            active: Vec::with_capacity(sessions),
            cur: vec![0.0; sessions * width.max(1)],
            nxt: vec![0.0; sessions * width.max(1)],
            skip: vec![0.0; sessions * width.max(1)],
            xrows: vec![0.0; sessions * row.max(1)],
            feats: vec![0.0; sessions * feat_len.max(1)],
            hid: vec![0.0; sessions * hid_len.max(1)],
        }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<InferencePlan> {
        &self.plan
    }

    /// Number of session slots in the pool (open or recycled).
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of currently open streams.
    pub fn open_streams(&self) -> usize {
        self.open.iter().filter(|&&o| o).count()
    }

    /// Whether slot `sid` currently belongs to a live stream.
    pub fn is_open(&self, sid: usize) -> bool {
        self.open.get(sid).copied().unwrap_or(false)
    }

    /// Opens a stream with fresh (zero) state, reusing a closed slot when
    /// one exists and growing the pool otherwise. Returns the stream id.
    pub fn open_stream(&mut self) -> usize {
        if let Some(sid) = self.free.pop() {
            self.open[sid] = true;
            return sid;
        }
        let sid = self.sessions.len();
        self.sessions.push(Session::new(Arc::clone(&self.plan)));
        self.queues.push(VecDeque::new());
        self.open.push(true);
        let n = self.sessions.len();
        self.cur.resize(n * self.col_w, 0.0);
        self.nxt.resize(n * self.col_w, 0.0);
        self.skip.resize(n * self.col_w, 0.0);
        self.xrows.resize(n * self.row_w, 0.0);
        self.feats.resize(n * self.feat_w, 0.0);
        self.hid.resize(n * self.hid_w, 0.0);
        sid
    }

    /// Closes stream `sid`: drops its queued samples, resets its state and
    /// recycles the slot for a future [`SessionPool::open_stream`]. The
    /// eviction/drain path of a serving front end — no other stream is
    /// disturbed and no pool-wide drain is needed.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range or already closed.
    pub fn close_stream(&mut self, sid: usize) {
        assert!(self.open[sid], "stream {sid} is not open");
        self.sessions[sid].reset();
        self.queues[sid].clear();
        self.open[sid] = false;
        self.free.push(sid);
    }

    /// Pending (queued, not yet flushed) timesteps across all sessions.
    pub fn pending_steps(&self) -> usize {
        let c = self.plan.input_channels().max(1);
        self.queues.iter().map(|q| q.len() / c).sum()
    }

    /// Pending (queued, not yet flushed) timesteps of one session — what a
    /// serving front end checks against its backpressure cap.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range.
    pub fn pending_for(&self, sid: usize) -> usize {
        self.queues[sid].len() / self.plan.input_channels().max(1)
    }

    /// Resets one session's stream state and drops its queued samples.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range.
    pub fn reset_session(&mut self, sid: usize) {
        self.sessions[sid].reset();
        self.queues[sid].clear();
    }

    /// Queues one input sample for session `sid`.
    ///
    /// # Panics
    ///
    /// Panics if `sid` is out of range, the stream is closed, or the sample
    /// length differs from the plan's input channels.
    pub fn push(&mut self, sid: usize, sample: &[f32]) {
        assert_eq!(
            sample.len(),
            self.plan.input_channels(),
            "sample length must equal the plan's input channels"
        );
        assert!(self.open[sid], "stream {sid} is not open");
        self.queues[sid].extend(sample.iter().copied());
    }

    /// Drains every queue, one wave (= one timestep per session with pending
    /// input) at a time, and returns the head outputs that were emitted, as
    /// `(session_id, output)` in emission order (per session: chronological).
    pub fn flush(&mut self) -> Vec<(usize, Vec<f32>)> {
        let plan = Arc::clone(&self.plan);
        let c_in = plan.input_channels();
        let mut results = Vec::new();
        loop {
            self.active.clear();
            for (sid, q) in self.queues.iter().enumerate() {
                if q.len() >= c_in {
                    self.active.push(sid);
                }
            }
            if self.active.is_empty() {
                return results;
            }
            // Dequeue one sample per active session into the wave matrix.
            for (r, &sid) in self.active.iter().enumerate() {
                for ci in 0..c_in {
                    self.cur[r * c_in + ci] = self.queues[sid].pop_front().expect("queued sample");
                }
            }
            self.run_wave(&plan, c_in, &mut results);
        }
    }

    /// Executes one wave currently held in `self.cur` over `self.active`.
    fn run_wave(
        &mut self,
        plan: &InferencePlan,
        c_in: usize,
        results: &mut Vec<(usize, Vec<f32>)>,
    ) {
        let mut width = c_in;
        for (bi, block) in plan.blocks().iter().enumerate() {
            match block {
                PlanBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                } => {
                    let n = self.active.len();
                    self.skip[..n * width].copy_from_slice(&self.cur[..n * width]);
                    self.conv_wave(bi, 0, conv1, width, true);
                    self.conv_wave(bi, 1, conv2, conv1.out_channels(), true);
                    let c_out = conv2.out_channels();
                    if let Some(proj) = downsample {
                        // Swap the saved input into `cur` so the conv helper
                        // can read it (the residual branch parks in `skip`),
                        // then swap back: `cur` = branch, `skip` = projection.
                        std::mem::swap(&mut self.cur, &mut self.skip);
                        self.conv_wave(bi, 2, proj, width, false);
                        std::mem::swap(&mut self.cur, &mut self.skip);
                    }
                    width = c_out;
                    for (a, b) in self.cur[..n * width].iter_mut().zip(self.skip.iter()) {
                        *a = (*a + b).max(0.0);
                    }
                }
                PlanBlock::Plain { convs, pool } => {
                    for (cj, conv) in convs.iter().enumerate() {
                        self.conv_wave(bi, cj, conv, width, true);
                        width = conv.out_channels();
                    }
                    if let Some(spec) = pool {
                        // Per-session pool phase: keep only emitting rows.
                        let mut kept = 0usize;
                        for r in 0..self.active.len() {
                            let sid = self.active[r];
                            let BlockState::Plain { pool: Some(ps), .. } =
                                &mut self.sessions[sid].blocks[bi]
                            else {
                                unreachable!("pool state missing")
                            };
                            let (src, dst) = (r * width, kept * width);
                            let emitted = ps.step(
                                spec,
                                &self.cur[src..src + width],
                                &mut self.nxt[dst..dst + width],
                            );
                            if emitted {
                                self.active[kept] = sid;
                                kept += 1;
                            }
                        }
                        self.active.truncate(kept);
                        if self.active.is_empty() {
                            return;
                        }
                        std::mem::swap(&mut self.cur, &mut self.nxt);
                    }
                }
            }
        }
        let n = self.active.len();
        match plan.head() {
            PlanHead::PerStep(conv) => {
                self.head_conv_wave(conv, width);
                let c_out = conv.out_channels();
                for (r, &sid) in self.active.iter().enumerate() {
                    results.push((sid, self.cur[r * c_out..(r + 1) * c_out].to_vec()));
                }
            }
            PlanHead::Fc {
                hidden,
                output,
                channels,
                window,
            } => {
                let in_f = hidden.in_features();
                for (r, &sid) in self.active.iter().enumerate() {
                    let HeadState::Fc { buf, pos } = &mut self.sessions[sid].head else {
                        unreachable!("fc head state missing")
                    };
                    push_fc_window(
                        buf,
                        pos,
                        *window,
                        &self.cur[r * width..r * width + *channels],
                    );
                    gather_fc_window(
                        buf,
                        *pos,
                        *channels,
                        *window,
                        &mut self.feats[r * in_f..(r + 1) * in_f],
                    );
                }
                let hid_f = hidden.out_features();
                dense_wave(hidden, n, &self.feats, &mut self.hid, true);
                let out_f = output.out_features();
                dense_wave(output, n, &self.hid[..n * hid_f], &mut self.nxt, false);
                for (r, &sid) in self.active.iter().enumerate() {
                    results.push((sid, self.nxt[r * out_f..(r + 1) * out_f].to_vec()));
                }
            }
            PlanHead::GlobalPoolFc(dense) => {
                let in_f = dense.in_features();
                for (r, &sid) in self.active.iter().enumerate() {
                    let HeadState::GlobalPool { sum, count } = &mut self.sessions[sid].head else {
                        unreachable!("global-pool head state missing")
                    };
                    for (s, &v) in sum.iter_mut().zip(&self.cur[r * width..(r + 1) * width]) {
                        *s += v;
                    }
                    *count += 1;
                    let inv = 1.0 / *count as f32;
                    for (f, &s) in self.feats[r * in_f..(r + 1) * in_f]
                        .iter_mut()
                        .zip(sum.iter())
                    {
                        *f = s * inv;
                    }
                }
                let out_f = dense.out_features();
                dense_wave(dense, n, &self.feats, &mut self.nxt, false);
                for (r, &sid) in self.active.iter().enumerate() {
                    results.push((sid, self.nxt[r * out_f..(r + 1) * out_f].to_vec()));
                }
            }
        }
    }

    /// Batched step of one block convolution over the active wave: pushes
    /// each session's ring, gathers the im2col rows and runs one GEMM.
    /// Reads columns from `cur`, leaves the output columns in `cur`.
    fn conv_wave(&mut self, bi: usize, cj: usize, conv: &CompiledConv, width: usize, relu: bool) {
        let ck = conv.in_channels() * conv.kernel();
        for (r, &sid) in self.active.iter().enumerate() {
            let state = match &mut self.sessions[sid].blocks[bi] {
                BlockState::Residual { s1, s2, ds } => match cj {
                    0 => s1,
                    1 => s2,
                    _ => ds.as_mut().expect("downsample state"),
                },
                BlockState::Plain { convs, .. } => &mut convs[cj],
            };
            state.push(&self.cur[r * width..r * width + conv.in_channels()]);
            state.gather(conv, &mut self.xrows[r * ck..(r + 1) * ck]);
        }
        self.finish_conv_wave(conv, relu);
    }

    /// Like [`SessionPool::conv_wave`] but against the per-step head state.
    fn head_conv_wave(&mut self, conv: &CompiledConv, width: usize) {
        let ck = conv.in_channels() * conv.kernel();
        for (r, &sid) in self.active.iter().enumerate() {
            let HeadState::PerStep(state) = &mut self.sessions[sid].head else {
                unreachable!("per-step head state missing")
            };
            state.push(&self.cur[r * width..r * width + conv.in_channels()]);
            state.gather(conv, &mut self.xrows[r * ck..(r + 1) * ck]);
        }
        self.finish_conv_wave(conv, false);
    }

    /// GEMM + bias (+ ReLU) over the gathered rows, leaving results in `cur`.
    fn finish_conv_wave(&mut self, conv: &CompiledConv, relu: bool) {
        let n = self.active.len();
        let ck = conv.in_channels() * conv.kernel();
        let c_out = conv.out_channels();
        for r in 0..n {
            self.nxt[r * c_out..(r + 1) * c_out].copy_from_slice(conv.bias.data());
        }
        gemm(n, ck, c_out, &self.xrows, &conv.wt, &mut self.nxt);
        if relu {
            relu_in_place(&mut self.nxt[..n * c_out]);
        }
        std::mem::swap(&mut self.cur, &mut self.nxt);
    }
}

/// Batched dense layer over `n` rows: one GEMM with the `[in, out]` weight
/// matrix, bias pre-filled, optional ReLU.
fn dense_wave(dense: &Dense, n: usize, input: &[f32], out: &mut [f32], relu: bool) {
    let (in_f, out_f) = (dense.in_features(), dense.out_features());
    for r in 0..n {
        out[r * out_f..(r + 1) * out_f].copy_from_slice(dense.bias.data());
    }
    gemm(n, in_f, out_f, input, dense.weight.data(), out);
    if relu {
        relu_in_place(&mut out[..n * out_f]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile_generic, compile_restcn, compile_temponet};
    use pit_models::{
        GenericTcn, GenericTcnConfig, ResTcn, ResTcnConfig, TempoNet, TempoNetConfig,
    };
    use pit_nas::SearchableNetwork;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Feeds `steps` samples of `streams` independent random streams through
    /// a pool and through individual sessions; both must agree exactly.
    fn pool_matches_individual(plan: Arc<InferencePlan>, streams: usize, steps: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = plan.input_channels();
        let inputs: Vec<Vec<f32>> = (0..streams)
            .map(|_| (0..steps * c).map(|_| rng.gen::<f32>() - 0.5).collect())
            .collect();

        let mut pool = SessionPool::new(Arc::clone(&plan), streams);
        let mut pooled: Vec<Vec<Vec<f32>>> = vec![Vec::new(); streams];
        for t in 0..steps {
            for (sid, stream) in inputs.iter().enumerate() {
                pool.push(sid, &stream[t * c..(t + 1) * c]);
            }
            for (sid, out) in pool.flush() {
                pooled[sid].push(out);
            }
        }

        for (sid, stream) in inputs.iter().enumerate() {
            let mut session = Session::new(Arc::clone(&plan));
            let mut solo = Vec::new();
            for t in 0..steps {
                if let Some(out) = session.push(&stream[t * c..(t + 1) * c]) {
                    solo.push(out);
                }
            }
            assert_eq!(solo.len(), pooled[sid].len(), "stream {sid} emission count");
            for (a, b) in solo.iter().zip(pooled[sid].iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!((x - y).abs() < 1e-5, "stream {sid}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn pooled_temponet_matches_individual_sessions() {
        let mut rng = StdRng::seed_from_u64(20);
        let cfg = TempoNetConfig::scaled(8, 64);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        pool_matches_individual(Arc::new(compile_temponet(&net)), 5, 40, 21);
    }

    #[test]
    fn pooled_restcn_matches_individual_sessions() {
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = ResTcnConfig {
            hidden_channels: 6,
            input_channels: 3,
            output_channels: 3,
            dropout: 0.0,
            ..ResTcnConfig::paper()
        };
        let net = ResTcn::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        pool_matches_individual(Arc::new(compile_restcn(&net)), 4, 25, 23);
    }

    #[test]
    fn pooled_generic_matches_individual_sessions() {
        let mut rng = StdRng::seed_from_u64(24);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        net.set_dilations(&[4, 8]);
        pool_matches_individual(Arc::new(compile_generic(&net)), 7, 30, 25);
    }

    #[test]
    fn ragged_queues_flush_in_waves() {
        let mut rng = StdRng::seed_from_u64(26);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        let plan = Arc::new(compile_generic(&net));
        let mut pool = SessionPool::new(Arc::clone(&plan), 2);
        // Session 0 gets 3 samples, session 1 gets 1: flush must emit 3 + 1
        // outputs and keep per-session chronology.
        for i in 0..3 {
            pool.push(0, &[i as f32]);
        }
        pool.push(1, &[9.0]);
        assert_eq!(pool.pending_steps(), 4);
        let results = pool.flush();
        assert_eq!(pool.pending_steps(), 0);
        assert_eq!(results.iter().filter(|(sid, _)| *sid == 0).count(), 3);
        assert_eq!(results.iter().filter(|(sid, _)| *sid == 1).count(), 1);

        // The same three samples through a fresh solo session agree.
        let mut solo = Session::new(plan);
        let solo_outs: Vec<_> = (0..3).filter_map(|i| solo.push(&[i as f32])).collect();
        let pooled0: Vec<_> = results
            .iter()
            .filter(|(sid, _)| *sid == 0)
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(solo_outs, pooled0);
    }

    #[test]
    fn reset_session_clears_state_and_queue() {
        let mut rng = StdRng::seed_from_u64(27);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        let plan = Arc::new(compile_generic(&net));
        let mut pool = SessionPool::new(Arc::clone(&plan), 1);
        pool.push(0, &[1.0]);
        let first = pool.flush();
        pool.push(0, &[0.5]);
        pool.reset_session(0);
        pool.push(0, &[1.0]);
        let second = pool.flush();
        assert_eq!(first, second);
    }
}
