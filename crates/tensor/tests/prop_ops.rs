//! Property-based tests of the tensor kernels and autograd operations.

use pit_tensor::{grad_check::check_param_grad, init, Param, Tape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor_from(values: &[f32], shape: &[usize]) -> Tensor {
    Tensor::from_vec(values.to_vec(), shape).expect("shape matches data")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Element-wise addition is commutative and subtraction is its inverse.
    #[test]
    fn add_commutes_and_sub_inverts(values in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let len = values.len();
        let a = tensor_from(&values, &[len]);
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-6));
        let back = ab.sub(&b).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-3));
    }

    /// The causal convolution is linear in its input:
    /// conv(x1 + x2) == conv(x1) + conv(x2).
    #[test]
    fn conv_is_linear_in_input(seed in 0u64..500, dilation in 1usize..4, k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x1 = init::uniform(&mut rng, &[1, 2, 12], 1.0);
        let x2 = init::uniform(&mut rng, &[1, 2, 12], 1.0);
        let w = init::uniform(&mut rng, &[3, 2, k], 1.0);
        let sum = x1.add(&x2).unwrap();
        let lhs = sum.conv1d_causal(&w, None, dilation).unwrap();
        let rhs = x1
            .conv1d_causal(&w, None, dilation)
            .unwrap()
            .add(&x2.conv1d_causal(&w, None, dilation).unwrap())
            .unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// Causality: output at time t never depends on inputs later than t.
    #[test]
    fn conv_never_looks_into_the_future(seed in 0u64..500, t_cut in 1usize..11) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::uniform(&mut rng, &[1, 1, 12], 1.0);
        let w = init::uniform(&mut rng, &[1, 1, 3], 1.0);
        let mut x_mod = x.clone();
        // Perturb everything at or after t_cut.
        for t in t_cut..12 {
            x_mod.data_mut()[t] += 5.0;
        }
        let y = x.conv1d_causal(&w, None, 2).unwrap();
        let y_mod = x_mod.conv1d_causal(&w, None, 2).unwrap();
        for t in 0..t_cut {
            prop_assert!((y.data()[t] - y_mod.data()[t]).abs() < 1e-6, "leak at t={}", t);
        }
    }

    /// Reshape round-trips and preserves the element sum.
    #[test]
    fn reshape_preserves_content(values in proptest::collection::vec(-10.0f32..10.0, 12)) {
        let a = tensor_from(&values, &[12]);
        let b = a.reshape(&[3, 4]).unwrap().reshape(&[2, 6]).unwrap().reshape(&[12]).unwrap();
        prop_assert!(a.approx_eq(&b, 0.0));
        prop_assert!((a.sum_all() - b.sum_all()).abs() < 1e-6);
    }

    /// Matmul distributes over addition: A(B + C) == AB + AC.
    #[test]
    fn matmul_distributes(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, &[3, 4], 1.0);
        let b = init::uniform(&mut rng, &[4, 2], 1.0);
        let c = init::uniform(&mut rng, &[4, 2], 1.0);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// Autograd gradients of a random composite expression agree with finite
    /// differences.
    #[test]
    fn composite_gradients_match_finite_differences(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Param::new(init::uniform(&mut rng, &[6], 1.0), "p");
        let forward = {
            let p = p.clone();
            move || {
                let mut tape = Tape::new();
                let x = tape.param(&p);
                let r = tape.relu(x);
                let s = tape.sigmoid(x);
                let prod = tape.mul(r, s);
                let sq = tape.square(prod);
                let loss = tape.mean(sq);
                tape.value(loss).item()
            }
        };
        p.zero_grad();
        {
            let mut tape = Tape::new();
            let x = tape.param(&p);
            let r = tape.relu(x);
            let s = tape.sigmoid(x);
            let prod = tape.mul(r, s);
            let sq = tape.square(prod);
            let loss = tape.mean(sq);
            tape.backward(loss);
        }
        let err = check_param_grad(&p, &p.grad(), &forward, 1e-3);
        prop_assert!(err < 5e-2, "gradient error {}", err);
    }

    /// Average pooling preserves the global mean when the kernel tiles the
    /// sequence exactly.
    #[test]
    fn avg_pool_preserves_mean(seed in 0u64..500, halves in 1usize..5) {
        let t = 2 * halves;
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::uniform(&mut rng, &[1, 1, t], 1.0);
        let y = x.avg_pool1d(2, 2).unwrap();
        prop_assert!((x.mean_all() - y.mean_all()).abs() < 1e-5);
    }
}
