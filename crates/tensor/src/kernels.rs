//! Flattened im2col/GEMM kernels behind the causal-convolution tensor ops.
//!
//! The original seed kernels walked `(batch, c_out, c_in, tap)` nests with a
//! scalar AXPY over time per tap — one fused multiply-add per load *and* store
//! of the output row. These kernels restructure the work the way a BLAS GEMM
//! does:
//!
//! 1. **im2col pack** (`pack_im2col`): each alive `(c_in, tap)` pair becomes
//!    one contiguous, pre-shifted row of a patch matrix, so the causal left
//!    padding is paid once per row as a `fill`/`copy_from_slice` instead of a
//!    per-element bounds decision in the hot loop;
//! 2. **register-tiled GEMM** ([`gemm`], [`gemm_nt`]): `MR` output rows are
//!    produced together over a `TILE`-wide time slab held in accumulator
//!    registers, so every packed input value is reused `MR` times and the
//!    output is touched once per slab instead of once per tap;
//! 3. **mask fusion**: the PIT time mask `M` is folded into the weight pack
//!    (`pack_weights`) and fully masked taps are dropped from the im2col
//!    plan (`plan_rows`), so masked training does one pass over the data and
//!    skips the work a dilated deployment convolution would skip — without
//!    ever materialising `W ⊙ M`;
//! 4. **batch parallelism**: every kernel fans the batch axis out through
//!    [`crate::pool`] when the tensor is large enough to amortise threads.
//!
//! The seed's naive nests are preserved verbatim at the bottom of this module
//! (gated behind `cfg(test)` and the `reference` feature) as the oracle the
//! test suite and the `pit-bench` before/after benchmarks compare against.
//!
//! The module is public so tape-free consumers (the `pit-infer` streaming
//! engine) can drive [`gemm`]/[`conv1d_forward`] directly into preallocated
//! buffers; the gradient kernels stay crate-private behind the autograd ops.

use crate::pool;

/// Number of output rows each GEMM microkernel iteration produces.
const MR: usize = 4;
/// Width (in `f32` lanes) of the time slab held in accumulators.
const TILE: usize = 16;

/// Geometry of one causal-convolution call.
#[derive(Debug, Clone, Copy)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c_in: usize,
    /// Sequence length.
    pub t: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel taps.
    pub k: usize,
    /// Dilation between taps.
    pub dilation: usize,
}

impl ConvShape {
    /// Multiply-accumulates per batch element of the dense convolution.
    fn work_per_batch(&self) -> usize {
        self.c_out * self.c_in * self.k * self.t
    }
}

/// One row of the im2col patch matrix: which flat weight column feeds it and
/// how far along time its input channel is delayed.
#[derive(Debug, Clone, Copy)]
struct TapRow {
    /// Flat column into the `[C_out, C_in·K]` weight matrix (`ci * K + kk`).
    col: usize,
    /// Source channel `ci`.
    src: usize,
    /// Causal delay `kk * dilation`.
    shift: usize,
}

/// Builds the im2col plan: one row per `(c_in, tap)` pair whose tap is alive.
///
/// Taps whose shift falls outside the sequence (`kk·d >= T`) contribute
/// nothing and are dropped; when a mask is given, taps it zeroes are dropped
/// too — this is where masked training recovers the sparsity of the dilated
/// network it will deploy as.
fn plan_rows(s: &ConvShape, mask: Option<&[f32]>) -> Vec<TapRow> {
    let mut rows = Vec::with_capacity(s.c_in * s.k);
    for ci in 0..s.c_in {
        for kk in 0..s.k {
            let shift = kk * s.dilation;
            if shift >= s.t {
                continue;
            }
            if let Some(m) = mask {
                if m[kk] == 0.0 {
                    continue;
                }
            }
            rows.push(TapRow {
                col: ci * s.k + kk,
                src: ci,
                shift,
            });
        }
    }
    rows
}

/// Gathers the alive columns of the `[C_out, C_in·K]` weight matrix into a
/// dense `[C_out, rows.len()]` matrix, folding the time mask in as it goes.
fn pack_weights(w: &[f32], s: &ConvShape, rows: &[TapRow], mask: Option<&[f32]>) -> Vec<f32> {
    let ck = s.c_in * s.k;
    let nr = rows.len();
    let mut wp = vec![0.0f32; s.c_out * nr];
    for co in 0..s.c_out {
        let src = &w[co * ck..(co + 1) * ck];
        let dst = &mut wp[co * nr..(co + 1) * nr];
        for (j, row) in rows.iter().enumerate() {
            let mv = mask.map(|m| m[row.col % s.k]).unwrap_or(1.0);
            dst[j] = src[row.col] * mv;
        }
    }
    wp
}

/// Packs one batch sample `[C_in, T]` into the `[rows.len(), T]` patch
/// matrix: row `j` is its source channel delayed by `shift` with zero fill.
fn pack_im2col(xb: &[f32], s: &ConvShape, rows: &[TapRow], xcol: &mut [f32]) {
    let t = s.t;
    for (j, row) in rows.iter().enumerate() {
        let src = &xb[row.src * t..(row.src + 1) * t];
        let dst = &mut xcol[j * t..(j + 1) * t];
        dst[..row.shift].fill(0.0);
        dst[row.shift..].copy_from_slice(&src[..t - row.shift]);
    }
}

/// One reduction row of the virtual-slab convolution microkernel: a source
/// channel read through a time shift, without materialising the shifted copy.
#[derive(Debug, Clone, Copy)]
struct MacRow {
    /// Row of the `[C_src, T]` source buffer this reduction reads.
    src: usize,
    /// Time shift of the read.
    shift: usize,
}

/// Multiply-accumulate driver over virtual shifted rows:
/// dispatches `mac_rows` in blocks of `MR` output rows.
///
/// * `LEFT = false` (forward): `out[i, tt] += wp[i, j] · src[row_j, tt − shift_j]`
///   (reads before the start of the row contribute zero — the causal pad);
/// * `LEFT = true` (input gradient): `out[i, τ] += wp[i, j] · src[row_j, τ + shift_j]`
///   (reads past the end contribute zero).
///
/// `out` must be pre-initialised (zeros or bias); values are accumulated.
fn conv_mac<const LEFT: bool>(
    rows_out: usize,
    t: usize,
    wp: &[f32],
    src: &[f32],
    rows: &[MacRow],
    out: &mut [f32],
) {
    let mut i = 0;
    while i + MR <= rows_out {
        mac_rows::<MR, LEFT>(i, t, wp, src, rows, out);
        i += MR;
    }
    match rows_out - i {
        0 => {}
        1 => mac_rows::<1, LEFT>(i, t, wp, src, rows, out),
        2 => mac_rows::<2, LEFT>(i, t, wp, src, rows, out),
        3 => mac_rows::<3, LEFT>(i, t, wp, src, rows, out),
        // A silent fall-through here would drop output rows; keep this
        // exhaustive relative to MR so raising MR cannot corrupt results.
        rem => unreachable!("conv_mac remainder {rem} not covered (MR = {MR})"),
    }
}

/// Produces output rows `i0..i0 + R` of `conv_mac`, register-tiling
/// `TILE`-wide time slabs.
///
/// `rows` must be sorted by `shift`: for any slab the rows then split into a
/// *full* prefix (whole slab valid — the hot, branch-free loop), a *partial*
/// middle (slab straddles the causal pad / sequence end) and a dead suffix,
/// found by two `partition_point` probes per slab instead of a branch per
/// row. Interior slabs are contiguous loads of the unpacked source row, so
/// the input never needs an im2col copy.
fn mac_rows<const R: usize, const LEFT: bool>(
    i0: usize,
    t: usize,
    wp: &[f32],
    src: &[f32],
    rows: &[MacRow],
    out: &mut [f32],
) {
    debug_assert!(rows.windows(2).all(|w| w[0].shift <= w[1].shift));
    let nr = rows.len();
    let mut tb = 0;
    while tb + TILE <= t {
        // Forward reads srow[tb + l − s] (valid once s <= tb); the input
        // gradient reads srow[tb + l + s] (valid while tb + s + TILE <= t).
        let (full_end, live_end) = if !LEFT {
            (
                rows.partition_point(|r| r.shift <= tb),
                rows.partition_point(|r| r.shift < tb + TILE),
            )
        } else {
            (
                rows.partition_point(|r| r.shift + tb + TILE <= t),
                rows.partition_point(|r| r.shift + tb < t),
            )
        };
        let mut acc = [[0.0f32; TILE]; R];
        for (j, row) in rows[..full_end].iter().enumerate() {
            let off = if !LEFT {
                row.src * t + tb - row.shift
            } else {
                row.src * t + tb + row.shift
            };
            let xs: &[f32; TILE] = src[off..off + TILE].try_into().expect("slab");
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = wp[(i0 + r) * nr + j];
                for l in 0..TILE {
                    accr[l] += av * xs[l];
                }
            }
        }
        for (j, row) in rows[full_end..live_end].iter().enumerate() {
            let j = j + full_end;
            let s = row.shift;
            let srow = &src[row.src * t..(row.src + 1) * t];
            if !LEFT {
                let start = s - tb;
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = wp[(i0 + r) * nr + j];
                    for l in start..TILE {
                        accr[l] += av * srow[tb + l - s];
                    }
                }
            } else {
                let end = t - s - tb;
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = wp[(i0 + r) * nr + j];
                    for l in 0..end {
                        accr[l] += av * srow[tb + l + s];
                    }
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let orow = &mut out[(i0 + r) * t + tb..(i0 + r) * t + tb + TILE];
            for l in 0..TILE {
                orow[l] += accr[l];
            }
        }
        tb += TILE;
    }
    // Ragged tail shorter than a slab: scalar lanes with explicit bounds.
    if tb < t {
        let rem = t - tb;
        let mut acc = [[0.0f32; TILE]; R];
        for (j, row) in rows.iter().enumerate() {
            let s = row.shift;
            let srow = &src[row.src * t..(row.src + 1) * t];
            let (start, end) = if !LEFT {
                (s.saturating_sub(tb).min(rem), rem)
            } else {
                (0, t.saturating_sub(s).saturating_sub(tb).min(rem))
            };
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = wp[(i0 + r) * nr + j];
                if !LEFT {
                    for l in start..end {
                        accr[l] += av * srow[tb + l - s];
                    }
                } else {
                    for l in start..end {
                        accr[l] += av * srow[tb + l + s];
                    }
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            for (l, &av) in accr.iter().enumerate().take(rem) {
                out[(i0 + r) * t + tb + l] += av;
            }
        }
    }
}

// ----------------------------------------------------------------------
// GEMM microkernels
// ----------------------------------------------------------------------

/// `out[m, n] += a[m, kd] · b[kd, n]`, producing `MR` output rows at a time
/// over `TILE`-wide column slabs held in registers.
///
/// This is the tape-free GEMM entry point the streaming inference engine
/// dispatches batched session steps through: `out` accumulates, so callers
/// pre-fill it with zeros or a bias.
///
/// # Panics
///
/// Panics (by slice indexing) if `a`, `b` or `out` are shorter than
/// `m·kd`, `kd·n` and `m·n` respectively.
pub fn gemm(m: usize, kd: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let mut i = 0;
    while i + MR <= m {
        gemm_rows::<MR>(i, kd, n, a, b, out);
        i += MR;
    }
    match m - i {
        0 => {}
        1 => gemm_rows::<1>(i, kd, n, a, b, out),
        2 => gemm_rows::<2>(i, kd, n, a, b, out),
        3 => gemm_rows::<3>(i, kd, n, a, b, out),
        // A silent fall-through here would drop output rows; keep this
        // exhaustive relative to MR so raising MR cannot corrupt results.
        rem => unreachable!("gemm remainder {rem} not covered (MR = {MR})"),
    }
}

/// Produces output rows `i..i + R` of `out += a · b`.
fn gemm_rows<const R: usize>(i: usize, kd: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let mut col = 0;
    // Full TILE-wide slabs: accumulators never leave registers inside the
    // p-loop, and each b slab load is reused R times.
    while col + TILE <= n {
        let mut acc = [[0.0f32; TILE]; R];
        for p in 0..kd {
            let bs: &[f32; TILE] = b[p * n + col..p * n + col + TILE]
                .try_into()
                .expect("tile slab");
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[(i + r) * kd + p];
                for l in 0..TILE {
                    accr[l] += av * bs[l];
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let orow = &mut out[(i + r) * n + col..(i + r) * n + col + TILE];
            for l in 0..TILE {
                orow[l] += accr[l];
            }
        }
        col += TILE;
    }
    // Ragged tail shorter than a slab.
    if col < n {
        let mut acc = [[0.0f32; TILE]; R];
        for p in 0..kd {
            let bs = &b[p * n + col..p * n + n];
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[(i + r) * kd + p];
                for (l, &bv) in bs.iter().enumerate() {
                    accr[l] += av * bv;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let orow = &mut out[(i + r) * n + col..(i + r) * n + n];
            for (l, ov) in orow.iter_mut().enumerate() {
                *ov += accr[l];
            }
        }
    }
}

/// `out[m, n] += a[m, kd] · bt[n, kd]ᵀ` — inner-product form, for gradients
/// where both operands are stored row-major along the shared `kd` axis.
///
/// Each `a` row slab is loaded once per `MR` `bt` rows.
///
/// # Panics
///
/// Panics (by slice indexing) if `a`, `bt` or `out` are shorter than
/// `m·kd`, `n·kd` and `m·n` respectively.
pub fn gemm_nt(m: usize, n: usize, kd: usize, a: &[f32], bt: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * kd..(i + 1) * kd];
        let mut j = 0;
        while j + MR <= n {
            let d = dot_rows::<MR>(arow, bt, j, kd);
            for (r, dv) in d.iter().enumerate() {
                out[i * n + j + r] += dv;
            }
            j += MR;
        }
        while j < n {
            let d = dot_rows::<1>(arow, bt, j, kd);
            out[i * n + j] += d[0];
            j += 1;
        }
    }
}

/// Dot products of `a` with `R` consecutive rows of `bt`, vectorised over
/// 8-lane slabs.
fn dot_rows<const R: usize>(a: &[f32], bt: &[f32], j0: usize, kd: usize) -> [f32; R] {
    const LANES: usize = 8;
    let mut acc = [[0.0f32; LANES]; R];
    let slabs = kd / LANES;
    for c in 0..slabs {
        let av: &[f32; LANES] = a[c * LANES..(c + 1) * LANES].try_into().expect("a slab");
        for (r, accr) in acc.iter_mut().enumerate() {
            let brow: &[f32; LANES] = bt
                [(j0 + r) * kd + c * LANES..(j0 + r) * kd + (c + 1) * LANES]
                .try_into()
                .expect("b slab");
            for l in 0..LANES {
                accr[l] += av[l] * brow[l];
            }
        }
    }
    let tail = slabs * LANES;
    for (r, accr) in acc.iter_mut().enumerate() {
        for p in tail..kd {
            accr[0] += a[p] * bt[(j0 + r) * kd + p];
        }
    }
    let mut out = [0.0f32; R];
    for (r, accr) in acc.iter().enumerate() {
        out[r] = accr.iter().sum();
    }
    out
}

// ----------------------------------------------------------------------
// Int8 kernels (quantized inference)
// ----------------------------------------------------------------------
//
// The serving-side quantized path (`pit-infer::quant`) executes `i8×i8→i32`:
// activations are quantized per layer at the seam, weights carry per-output-
// channel scales, and the integer accumulation is *exact* — all rounding
// happens at the quantize/dequantize boundaries, which is what makes the
// analytic parity bounds of the quantized plans provable.
//
// Unlike the f32 microkernels above, integer addition is associative, so the
// compiler is free to vectorize the lane-split reductions below into full
// 256-bit SIMD under `target-cpu=x86-64-v3` — the scalar f32 dot product of a
// streaming step cannot legally be reordered, which is exactly why the i8
// step beats it by far more than the 4x data-width ratio alone would give.

/// `out[m, n] += a[m, kd] · b[kd, n]` over `i8` operands with exact `i32`
/// accumulation — the wave kernel of the quantized session pool.
///
/// # Panics
///
/// Panics (by slice indexing) if `a`, `b` or `out` are shorter than
/// `m·kd`, `kd·n` and `m·n` respectively.
pub fn gemm_i8(m: usize, kd: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    let mut i = 0;
    while i + MR <= m {
        gemm_i8_rows::<MR>(i, kd, n, a, b, out);
        i += MR;
    }
    match m - i {
        0 => {}
        1 => gemm_i8_rows::<1>(i, kd, n, a, b, out),
        2 => gemm_i8_rows::<2>(i, kd, n, a, b, out),
        3 => gemm_i8_rows::<3>(i, kd, n, a, b, out),
        // A silent fall-through here would drop output rows; keep this
        // exhaustive relative to MR so raising MR cannot corrupt results.
        rem => unreachable!("gemm_i8 remainder {rem} not covered (MR = {MR})"),
    }
}

/// Produces output rows `i..i + R` of `out += a · b` (`i8` operands).
fn gemm_i8_rows<const R: usize>(
    i: usize,
    kd: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
) {
    let mut col = 0;
    while col + TILE <= n {
        let mut acc = [[0i32; TILE]; R];
        for p in 0..kd {
            let bs: &[i8; TILE] = b[p * n + col..p * n + col + TILE]
                .try_into()
                .expect("tile slab");
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = i32::from(a[(i + r) * kd + p]);
                for l in 0..TILE {
                    accr[l] += av * i32::from(bs[l]);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let orow = &mut out[(i + r) * n + col..(i + r) * n + col + TILE];
            for l in 0..TILE {
                orow[l] += accr[l];
            }
        }
        col += TILE;
    }
    if col < n {
        let mut acc = [[0i32; TILE]; R];
        for p in 0..kd {
            let bs = &b[p * n + col..p * n + n];
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = i32::from(a[(i + r) * kd + p]);
                for (l, &bv) in bs.iter().enumerate() {
                    accr[l] += av * i32::from(bv);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let orow = &mut out[(i + r) * n + col..(i + r) * n + n];
            for (l, ov) in orow.iter_mut().enumerate() {
                *ov += accr[l];
            }
        }
    }
}

/// Exact `i8·i8→i32` dot product, lane-split so the reduction vectorizes —
/// a standalone quantized primitive for output-major consumers. (The
/// `pit-infer` streaming step itself accumulates input-major over its
/// transposed weight pack, which amortises loads across output channels;
/// this is the right kernel when only one output row is needed.)
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    const LANES: usize = 16;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut acc = [0i32; LANES];
    let slabs = n / LANES;
    for c in 0..slabs {
        let av: &[i8; LANES] = a[c * LANES..(c + 1) * LANES].try_into().expect("a slab");
        let bv: &[i8; LANES] = b[c * LANES..(c + 1) * LANES].try_into().expect("b slab");
        for l in 0..LANES {
            acc[l] += i32::from(av[l]) * i32::from(bv[l]);
        }
    }
    let mut total: i32 = acc.iter().sum();
    for p in slabs * LANES..n {
        total += i32::from(a[p]) * i32::from(b[p]);
    }
    total
}

/// Offline causal dilated convolution over quantized operands:
/// `out[n, co, t] = Σ w[co, ci, k] · x[n, ci, t − k·d]` with exact `i32`
/// accumulation (no bias — dequantization applies bias in f32).
///
/// This is the whole-window (offline) form of the quantized convolution —
/// e.g. for batch scoring or validating a quantized plan against recorded
/// windows. The `pit-infer` streaming engine produces the same exact `i32`
/// sums one timestep at a time (input-major per-step accumulation, and
/// [`gemm_i8`] for batched session waves).
///
/// # Panics
///
/// Panics (by slice indexing) if the buffers are shorter than the geometry
/// in `s` implies (`x`: `n·c_in·t`, `w`: `c_out·c_in·k`, `out`: `n·c_out·t`).
pub fn conv1d_forward_i8(x: &[i8], w: &[i8], s: &ConvShape, out: &mut [i32]) {
    let (n, c_in, t, c_out, k) = (s.n, s.c_in, s.t, s.c_out, s.k);
    out[..n * c_out * t].fill(0);
    for bn in 0..n {
        for co in 0..c_out {
            let out_base = (bn * c_out + co) * t;
            for ci in 0..c_in {
                let x_base = (bn * c_in + ci) * t;
                let w_base = (co * c_in + ci) * k;
                for kk in 0..k {
                    let wv = i32::from(w[w_base + kk]);
                    if wv == 0 {
                        continue;
                    }
                    let shift = kk * s.dilation;
                    if shift >= t {
                        continue;
                    }
                    for tt in shift..t {
                        out[out_base + tt] += wv * i32::from(x[x_base + tt - shift]);
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Convolution drivers
// ----------------------------------------------------------------------

/// Forward causal convolution: `out[n, co, t] = Σ (w ⊙ m)[co, ci, k] · x[n, ci, t − k·d]`
/// plus bias, batch-parallel over `n`.
///
/// Tape-free, allocation-free into `out` apart from the internal weight pack;
/// this is the kernel both [`crate::Tensor::conv1d_causal`] and the compiled
/// inference plans execute through.
///
/// # Panics
///
/// Panics (by slice indexing) if the buffers are shorter than the geometry in
/// `s` implies (`x`: `n·c_in·t`, `w`: `c_out·c_in·k`, `bias`: `c_out`,
/// `mask`: `k`, `out`: `n·c_out·t`).
pub fn conv1d_forward(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    mask: Option<&[f32]>,
    s: &ConvShape,
    out: &mut [f32],
) {
    let mut rows = plan_rows(s, mask);
    // Sorted by shift so the microkernel's full/partial/dead split is a
    // prefix partition per slab.
    rows.sort_by_key(|r| r.shift);
    let wp = pack_weights(w, s, &rows, mask);
    let mac: Vec<MacRow> = rows
        .iter()
        .map(|r| MacRow {
            src: r.src,
            shift: r.shift,
        })
        .collect();
    let threads = pool::plan_threads(s.n, s.work_per_batch());
    let (c_in, t, c_out) = (s.c_in, s.t, s.c_out);
    pool::for_each_chunk(out, c_out * t, threads, |bn, out_b| {
        match bias {
            Some(bv) => {
                for (co, orow) in out_b.chunks_mut(t).enumerate() {
                    orow.fill(bv[co]);
                }
            }
            None => out_b.fill(0.0),
        }
        if mac.is_empty() {
            return;
        }
        let xb = &x[bn * c_in * t..(bn + 1) * c_in * t];
        conv_mac::<false>(c_out, t, &wp, xb, &mac, out_b);
    });
}

/// Input gradient: `gx[n, ci, τ] += Σ (w ⊙ m)[co, ci, k] · g[n, co, τ + k·d]`,
/// computed as `Wᵀ · dY` into patch rows followed by a shifted col2im
/// scatter-add. Batch-parallel over `n`.
pub(crate) fn conv1d_grad_input(
    g: &[f32],
    w: &[f32],
    mask: Option<&[f32]>,
    s: &ConvShape,
    gx: &mut [f32],
) {
    // Reduction rows seen from an input channel: every alive `(c_out, tap)`
    // pair, reading dY through a forward (left) shift. The weight giving
    // output row `ci` its coefficient for reduction row `(co, kk)` is
    // `w[co, ci, kk]`, gathered into `wt[ci, j]` with the mask folded in.
    let mut mac = Vec::with_capacity(s.c_out * s.k);
    let mut taps = Vec::with_capacity(s.c_out * s.k);
    for co in 0..s.c_out {
        for kk in 0..s.k {
            let shift = kk * s.dilation;
            if shift >= s.t {
                continue;
            }
            if let Some(m) = mask {
                if m[kk] == 0.0 {
                    continue;
                }
            }
            mac.push(MacRow { src: co, shift });
            taps.push((co, kk));
        }
    }
    // Shift-sorted for the microkernel's prefix partition (see `mac_rows`).
    let mut order: Vec<usize> = (0..mac.len()).collect();
    order.sort_by_key(|&j| mac[j].shift);
    let mac: Vec<MacRow> = order.iter().map(|&j| mac[j]).collect();
    let taps: Vec<(usize, usize)> = order.iter().map(|&j| taps[j]).collect();
    let nr = mac.len();
    let ck = s.c_in * s.k;
    let mut wt = vec![0.0f32; s.c_in * nr];
    for ci in 0..s.c_in {
        for (j, &(co, kk)) in taps.iter().enumerate() {
            let mv = mask.map(|m| m[kk]).unwrap_or(1.0);
            wt[ci * nr + j] = w[co * ck + ci * s.k + kk] * mv;
        }
    }
    let threads = pool::plan_threads(s.n, s.work_per_batch());
    let (c_in, t, c_out) = (s.c_in, s.t, s.c_out);
    pool::for_each_chunk(gx, c_in * t, threads, |bn, gx_b| {
        gx_b.fill(0.0);
        if nr == 0 {
            return;
        }
        let gb = &g[bn * c_out * t..(bn + 1) * c_out * t];
        conv_mac::<true>(c_in, t, &wt, gb, &mac, gx_b);
    });
}

/// Weight gradient: `gw[co, ci, k] = Σ_{n, t} g[n, co, t] · x[n, ci, t − k·d]`,
/// computed per batch as `dY · X_colᵀ` and reduced over the batch through
/// per-worker accumulators.
///
/// Never masked: the fused masked op needs the gradient of the *dense*
/// product `W ⊙ M`, because the straight-through estimator sends gradient to
/// γ through currently-masked taps too.
pub(crate) fn conv1d_grad_weight(x: &[f32], g: &[f32], s: &ConvShape, gw: &mut [f32]) {
    let rows = plan_rows(s, None);
    let nr = rows.len();
    gw.fill(0.0);
    if nr == 0 {
        return;
    }
    let threads = pool::plan_threads(s.n, s.work_per_batch());
    let (c_in, t, c_out) = (s.c_in, s.t, s.c_out);
    let gwp = pool::map_accumulate(s.n, c_out * nr, threads, |bn, acc| {
        let mut xcol = vec![0.0f32; nr * t];
        pack_im2col(&x[bn * c_in * t..(bn + 1) * c_in * t], s, &rows, &mut xcol);
        gemm_nt(
            c_out,
            nr,
            t,
            &g[bn * c_out * t..(bn + 1) * c_out * t],
            &xcol,
            acc,
        );
    });
    // Scatter the packed columns back to [C_out, C_in, K]; taps dropped from
    // the plan (shift >= T) correctly stay zero.
    let ck = c_in * s.k;
    for co in 0..c_out {
        for (j, row) in rows.iter().enumerate() {
            gw[co * ck + row.col] = gwp[co * nr + j];
        }
    }
}

// ----------------------------------------------------------------------
// Naive reference kernels (the seed implementation)
// ----------------------------------------------------------------------

/// The seed's nested-loop forward convolution, kept as the correctness oracle
/// for the im2col kernels and as the "before" side of the benchmark suite.
#[cfg(any(test, feature = "reference"))]
pub(crate) fn naive_conv1d_forward(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    s: &ConvShape,
    out: &mut [f32],
) {
    let (n, c_in, t, c_out, k) = (s.n, s.c_in, s.t, s.c_out, s.k);
    for bn in 0..n {
        for co in 0..c_out {
            let out_base = (bn * c_out + co) * t;
            let b = bias.map(|b| b[co]).unwrap_or(0.0);
            for v in &mut out[out_base..out_base + t] {
                *v = b;
            }
            for ci in 0..c_in {
                let x_base = (bn * c_in + ci) * t;
                let w_base = (co * c_in + ci) * k;
                for kk in 0..k {
                    let wv = w[w_base + kk];
                    if wv == 0.0 {
                        continue;
                    }
                    let shift = kk * s.dilation;
                    if shift >= t {
                        continue;
                    }
                    for tt in shift..t {
                        out[out_base + tt] += wv * x[x_base + tt - shift];
                    }
                }
            }
        }
    }
}

/// The seed's nested-loop input gradient (reference oracle).
#[cfg(any(test, feature = "reference"))]
pub(crate) fn naive_conv1d_grad_input(g: &[f32], w: &[f32], s: &ConvShape, gx: &mut [f32]) {
    let (n, c_in, t, c_out, k) = (s.n, s.c_in, s.t, s.c_out, s.k);
    gx.fill(0.0);
    for bn in 0..n {
        for co in 0..c_out {
            let go_base = (bn * c_out + co) * t;
            for ci in 0..c_in {
                let gx_base = (bn * c_in + ci) * t;
                let w_base = (co * c_in + ci) * k;
                for kk in 0..k {
                    let wv = w[w_base + kk];
                    if wv == 0.0 {
                        continue;
                    }
                    let shift = kk * s.dilation;
                    if shift >= t {
                        continue;
                    }
                    for tt in shift..t {
                        gx[gx_base + tt - shift] += wv * g[go_base + tt];
                    }
                }
            }
        }
    }
}

/// The seed's nested-loop weight gradient (reference oracle).
#[cfg(any(test, feature = "reference"))]
pub(crate) fn naive_conv1d_grad_weight(x: &[f32], g: &[f32], s: &ConvShape, gw: &mut [f32]) {
    let (n, c_in, t, c_out, k) = (s.n, s.c_in, s.t, s.c_out, s.k);
    gw.fill(0.0);
    for bn in 0..n {
        for co in 0..c_out {
            let go_base = (bn * c_out + co) * t;
            for ci in 0..c_in {
                let x_base = (bn * c_in + ci) * t;
                let w_base = (co * c_in + ci) * k;
                for kk in 0..k {
                    let shift = kk * s.dilation;
                    if shift >= t {
                        continue;
                    }
                    let mut acc = 0.0f32;
                    for tt in shift..t {
                        acc += g[go_base + tt] * x[x_base + tt - shift];
                    }
                    gw[w_base + kk] += acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shape(
        n: usize,
        c_in: usize,
        t: usize,
        c_out: usize,
        k: usize,
        dilation: usize,
    ) -> ConvShape {
        ConvShape {
            n,
            c_in,
            t,
            c_out,
            k,
            dilation,
        }
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// Odd geometries from the satellite checklist: dilation past the
    /// sequence, single-tap kernels, batch of one, channel counts that are
    /// not multiples of the microkernel blocking.
    fn odd_shapes() -> Vec<ConvShape> {
        vec![
            shape(2, 3, 10, 4, 3, 2),
            shape(1, 1, 1, 1, 1, 1),  // everything degenerate
            shape(1, 2, 5, 3, 9, 4),  // (K-1)·d far beyond T: dead taps
            shape(2, 3, 4, 2, 3, 7),  // dilation > T
            shape(3, 5, 17, 7, 4, 2), // channels not a multiple of MR
            shape(1, 4, 16, 4, 1, 3), // K = 1
            shape(4, 1, 33, 6, 5, 1), // T not a multiple of TILE
            shape(2, 6, 16, 3, 2, 8), // shift lands exactly at T boundary
        ]
    }

    #[test]
    fn forward_matches_naive_on_odd_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        for s in odd_shapes() {
            let x = init::uniform(&mut rng, &[s.n, s.c_in, s.t], 1.0);
            let w = init::uniform(&mut rng, &[s.c_out, s.c_in, s.k], 1.0);
            let b = init::uniform(&mut rng, &[s.c_out], 1.0);
            let mut fast = vec![0.0f32; s.n * s.c_out * s.t];
            let mut naive = vec![0.0f32; s.n * s.c_out * s.t];
            conv1d_forward(x.data(), w.data(), Some(b.data()), None, &s, &mut fast);
            naive_conv1d_forward(x.data(), w.data(), Some(b.data()), &s, &mut naive);
            assert!(max_diff(&fast, &naive) < 1e-4, "forward mismatch on {s:?}");
        }
    }

    #[test]
    fn grad_input_matches_naive_on_odd_shapes() {
        let mut rng = StdRng::seed_from_u64(12);
        for s in odd_shapes() {
            let g = init::uniform(&mut rng, &[s.n, s.c_out, s.t], 1.0);
            let w = init::uniform(&mut rng, &[s.c_out, s.c_in, s.k], 1.0);
            let mut fast = vec![0.0f32; s.n * s.c_in * s.t];
            let mut naive = vec![0.0f32; s.n * s.c_in * s.t];
            conv1d_grad_input(g.data(), w.data(), None, &s, &mut fast);
            naive_conv1d_grad_input(g.data(), w.data(), &s, &mut naive);
            assert!(
                max_diff(&fast, &naive) < 1e-4,
                "grad_input mismatch on {s:?}"
            );
        }
    }

    #[test]
    fn grad_weight_matches_naive_on_odd_shapes() {
        let mut rng = StdRng::seed_from_u64(13);
        for s in odd_shapes() {
            let x = init::uniform(&mut rng, &[s.n, s.c_in, s.t], 1.0);
            let g = init::uniform(&mut rng, &[s.n, s.c_out, s.t], 1.0);
            let mut fast = vec![0.0f32; s.c_out * s.c_in * s.k];
            let mut naive = vec![0.0f32; s.c_out * s.c_in * s.k];
            conv1d_grad_weight(x.data(), g.data(), &s, &mut fast);
            naive_conv1d_grad_weight(x.data(), g.data(), &s, &mut naive);
            assert!(
                max_diff(&fast, &naive) < 1e-3,
                "grad_weight mismatch on {s:?}"
            );
        }
    }

    #[test]
    fn masked_forward_equals_naive_on_premasked_weights() {
        // Fusing the mask into the pack must equal masking the weights first
        // and running the dense kernel.
        let mut rng = StdRng::seed_from_u64(14);
        for s in odd_shapes() {
            let x = init::uniform(&mut rng, &[s.n, s.c_in, s.t], 1.0);
            let w = init::uniform(&mut rng, &[s.c_out, s.c_in, s.k], 1.0);
            let mask: Vec<f32> = (0..s.k)
                .map(|kk| if kk % 2 == 0 { 1.0 } else { 0.0 })
                .collect();
            let wm: Vec<f32> = w
                .data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v * mask[i % s.k])
                .collect();
            let mut fused = vec![0.0f32; s.n * s.c_out * s.t];
            let mut premasked = vec![0.0f32; s.n * s.c_out * s.t];
            conv1d_forward(x.data(), w.data(), None, Some(&mask), &s, &mut fused);
            naive_conv1d_forward(x.data(), &wm, None, &s, &mut premasked);
            assert!(
                max_diff(&fused, &premasked) < 1e-4,
                "masked forward mismatch on {s:?}"
            );

            let mut gi_fused = vec![0.0f32; s.n * s.c_in * s.t];
            let mut gi_premasked = vec![0.0f32; s.n * s.c_in * s.t];
            let g = init::uniform(&mut rng, &[s.n, s.c_out, s.t], 1.0);
            conv1d_grad_input(g.data(), w.data(), Some(&mask), &s, &mut gi_fused);
            naive_conv1d_grad_input(g.data(), &wm, &s, &mut gi_premasked);
            assert!(
                max_diff(&gi_fused, &gi_premasked) < 1e-4,
                "masked grad_input mismatch on {s:?}"
            );
        }
    }

    #[test]
    fn gemm_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(15);
        for (m, kd, n) in [(1, 1, 1), (4, 3, 16), (5, 7, 33), (9, 2, 8), (3, 8, 50)] {
            let a = init::uniform(&mut rng, &[m, kd], 1.0);
            let b = init::uniform(&mut rng, &[kd, n], 1.0);
            let mut fast = vec![0.0f32; m * n];
            gemm(m, kd, n, a.data(), b.data(), &mut fast);
            let mut school = vec![0.0f32; m * n];
            for i in 0..m {
                for p in 0..kd {
                    for j in 0..n {
                        school[i * n + j] += a.data()[i * kd + p] * b.data()[p * n + j];
                    }
                }
            }
            assert!(max_diff(&fast, &school) < 1e-4, "gemm {m}x{kd}x{n}");
        }
    }

    /// Deterministic pseudo-random i8 values covering the full range.
    fn i8_fill(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 255) as i64 as i8
            })
            .collect()
    }

    #[test]
    fn gemm_i8_matches_schoolbook_exactly() {
        for (seed, (m, kd, n)) in [(1, 1, 1), (4, 3, 16), (5, 7, 33), (9, 2, 8), (3, 8, 50)]
            .into_iter()
            .enumerate()
        {
            let a = i8_fill(m * kd, seed as u64 + 1);
            let b = i8_fill(kd * n, seed as u64 + 100);
            let mut fast = vec![0i32; m * n];
            gemm_i8(m, kd, n, &a, &b, &mut fast);
            let mut school = vec![0i32; m * n];
            for i in 0..m {
                for p in 0..kd {
                    for j in 0..n {
                        school[i * n + j] += i32::from(a[i * kd + p]) * i32::from(b[p * n + j]);
                    }
                }
            }
            // Integer arithmetic: equality is exact, not approximate.
            assert_eq!(fast, school, "gemm_i8 {m}x{kd}x{n}");
        }
    }

    #[test]
    fn dot_i8_matches_schoolbook_exactly() {
        for len in [0usize, 1, 15, 16, 17, 64, 113] {
            let a = i8_fill(len, 7);
            let b = i8_fill(len, 13);
            let school: i32 = a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| i32::from(x) * i32::from(y))
                .sum();
            assert_eq!(dot_i8(&a, &b), school, "dot_i8 len {len}");
        }
    }

    #[test]
    fn conv1d_forward_i8_matches_f32_kernel_on_exact_values() {
        // Every i8 value is exactly representable in f32, and products of
        // i8 pairs accumulate exactly in f32 for these sizes, so the f32
        // oracle is bit-faithful to the integer result.
        for s in odd_shapes() {
            let x = i8_fill(s.n * s.c_in * s.t, 21);
            let w = i8_fill(s.c_out * s.c_in * s.k, 22);
            let mut out_i = vec![0i32; s.n * s.c_out * s.t];
            conv1d_forward_i8(&x, &w, &s, &mut out_i);
            let xf: Vec<f32> = x.iter().map(|&v| f32::from(v)).collect();
            let wf: Vec<f32> = w.iter().map(|&v| f32::from(v)).collect();
            let mut out_f = vec![0.0f32; s.n * s.c_out * s.t];
            naive_conv1d_forward(&xf, &wf, None, &s, &mut out_f);
            for (i, (&qi, &qf)) in out_i.iter().zip(out_f.iter()).enumerate() {
                assert_eq!(qi as f32, qf, "conv1d_forward_i8 slot {i} on {s:?}");
            }
        }
    }

    #[test]
    fn gemm_nt_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(16);
        for (m, n, kd) in [(1, 1, 1), (4, 5, 16), (3, 9, 23), (7, 2, 64)] {
            let a = init::uniform(&mut rng, &[m, kd], 1.0);
            let bt = init::uniform(&mut rng, &[n, kd], 1.0);
            let mut fast = vec![0.0f32; m * n];
            gemm_nt(m, n, kd, a.data(), bt.data(), &mut fast);
            let mut school = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    for p in 0..kd {
                        school[i * n + j] += a.data()[i * kd + p] * bt.data()[j * kd + p];
                    }
                }
            }
            assert!(max_diff(&fast, &school) < 1e-4, "gemm_nt {m}x{n}x{kd}");
        }
    }
}
