//! # pit-tensor
//!
//! A small, self-contained N-dimensional tensor library with a reverse-mode
//! automatic-differentiation engine, built as the numerical substrate of the
//! Pruning-In-Time (PIT) reproduction.
//!
//! The crate provides:
//!
//! * [`Tensor`] — a dense, row-major, `f32` n-dimensional array with the
//!   kernels needed by temporal convolutional networks (element-wise
//!   arithmetic, matrix multiplication, causal dilated 1-D convolution,
//!   pooling, reductions);
//! * [`Tape`] and [`Var`] — a define-by-run autograd tape. Every forward
//!   operation records a node with a backward closure; [`Tape::backward`]
//!   propagates gradients to every recorded [`Param`];
//! * [`Param`] — a trainable tensor that persists across training steps and
//!   accumulates gradients when lifted onto a tape;
//! * [`grad_check`] — finite-difference gradient checking used throughout the
//!   test suites of the higher-level crates.
//!
//! # Example
//!
//! ```
//! use pit_tensor::{Tape, Tensor, Param};
//!
//! // y = sum((a * b) + a), with gradients accumulated into the params.
//! let a = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(), "a");
//! let b = Param::new(Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap(), "b");
//! let mut tape = Tape::new();
//! let va = tape.param(&a);
//! let vb = tape.param(&b);
//! let prod = tape.mul(va, vb);
//! let s = tape.add(prod, va);
//! let y = tape.sum(s);
//! assert_eq!(tape.value(y).item(), (1.0 * 3.0 + 1.0) + (2.0 * 4.0 + 2.0));
//! tape.backward(y);
//! assert_eq!(a.grad().data(), &[4.0, 5.0]); // d/da = b + 1
//! assert_eq!(b.grad().data(), &[1.0, 2.0]); // d/db = a
//! ```

pub mod error;
pub mod grad_check;
pub mod hist;
pub mod init;
pub mod json;
pub mod kernels;
pub mod ops;
pub mod param;
pub mod pool;
pub mod shape;
pub mod tape;
pub mod tensor;

pub use error::{Result, TensorError};
pub use param::Param;
pub use shape::Shape;
pub use tape::{Tape, Var};
pub use tensor::Tensor;
