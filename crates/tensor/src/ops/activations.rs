//! Non-linear activations and dropout.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Rectified linear unit: `max(x, 0)`.
    pub fn relu(&mut self, x: Var) -> Var {
        let xv = self.value(x).clone();
        let value = xv.map(|v| v.max(0.0));
        self.push_unary(x, value, move |g| {
            g.zip_map(&xv, |gi, xi| if xi > 0.0 { gi } else { 0.0 })
                .expect("relu backward shape")
        })
    }

    /// Logistic sigmoid `1 / (1 + exp(-x))`.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        let out = value.clone();
        self.push_unary(x, value, move |g| {
            g.zip_map(&out, |gi, yi| gi * yi * (1.0 - yi))
                .expect("sigmoid backward shape")
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.value(x).map(f32::tanh);
        let out = value.clone();
        self.push_unary(x, value, move |g| {
            g.zip_map(&out, |gi, yi| gi * (1.0 - yi * yi))
                .expect("tanh backward shape")
        })
    }

    /// Dropout with a caller-supplied keep mask.
    ///
    /// `mask` must have the same shape as `x` and contain `0.0` for dropped
    /// positions and `1 / (1 - p)` (inverted-dropout scaling) for kept ones.
    /// The same mask is applied in the backward pass. Layers build the mask
    /// from their RNG so the op itself stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs from the input shape.
    pub fn dropout_with_mask(&mut self, x: Var, mask: Tensor) -> Var {
        let value = self
            .value(x)
            .mul(&mask)
            .unwrap_or_else(|e| panic!("dropout_with_mask: {e}"));
        self.push_unary(x, value, move |g| {
            g.mul(&mask).expect("dropout backward shape")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_param_grad;
    use crate::param::Param;

    #[test]
    fn relu_forward_and_grad() {
        let p = Param::new(Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap(), "p");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let y = tape.relu(x);
        assert_eq!(tape.value(y).data(), &[0.0, 0.0, 2.0]);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(p.grad().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let p = Param::new(Tensor::from_vec(vec![-3.0, 0.0, 3.0], &[3]).unwrap(), "p");
        let forward = {
            let p = p.clone();
            move || {
                let mut tape = Tape::new();
                let x = tape.param(&p);
                let y = tape.sigmoid(x);
                let loss = tape.sum(y);
                tape.value(loss).item()
            }
        };
        {
            let mut tape = Tape::new();
            let x = tape.param(&p);
            let y = tape.sigmoid(x);
            assert!(tape
                .value(y)
                .data()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)));
            assert!((tape.value(y).data()[1] - 0.5).abs() < 1e-6);
            let loss = tape.sum(y);
            tape.backward(loss);
        }
        assert!(check_param_grad(&p, &p.grad(), &forward, 1e-3) < 1e-2);
    }

    #[test]
    fn tanh_grad_matches_finite_differences() {
        let p = Param::new(Tensor::from_vec(vec![-0.5, 0.25, 1.5], &[3]).unwrap(), "p");
        let forward = {
            let p = p.clone();
            move || {
                let mut tape = Tape::new();
                let x = tape.param(&p);
                let y = tape.tanh(x);
                let sq = tape.square(y);
                let loss = tape.sum(sq);
                tape.value(loss).item()
            }
        };
        {
            let mut tape = Tape::new();
            let x = tape.param(&p);
            let y = tape.tanh(x);
            let sq = tape.square(y);
            let loss = tape.sum(sq);
            tape.backward(loss);
        }
        assert!(check_param_grad(&p, &p.grad(), &forward, 1e-3) < 1e-2);
    }

    #[test]
    fn dropout_mask_applies_forward_and_backward() {
        let p = Param::new(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap(),
            "p",
        );
        let mask = Tensor::from_vec(vec![0.0, 2.0, 0.0, 2.0], &[4]).unwrap();
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let y = tape.dropout_with_mask(x, mask);
        assert_eq!(tape.value(y).data(), &[0.0, 4.0, 0.0, 8.0]);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(p.grad().data(), &[0.0, 2.0, 0.0, 2.0]);
    }
}
