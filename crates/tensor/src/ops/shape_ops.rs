//! Shape-changing operations (reshape, flatten).

use crate::tape::{Tape, Var};

impl Tape {
    /// Reshapes a node to a new shape of identical volume.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape(&mut self, x: Var, shape: &[usize]) -> Var {
        let xv = self.value(x).clone();
        let value = xv
            .reshape(shape)
            .unwrap_or_else(|e| panic!("tape reshape: {e}"));
        let orig = xv.dims().to_vec();
        self.push_unary(x, value, move |g| {
            g.reshape(&orig).expect("reshape backward")
        })
    }

    /// Flattens all dimensions after the first: `[N, d1, d2, ...] -> [N, d1*d2*...]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has rank 0.
    pub fn flatten_batch(&mut self, x: Var) -> Var {
        let dims = self.dims(x);
        assert!(!dims.is_empty(), "flatten_batch requires rank >= 1");
        let n = dims[0];
        let rest: usize = dims[1..].iter().product::<usize>().max(1);
        self.reshape(x, &[n, rest])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::tensor::Tensor;

    #[test]
    fn reshape_roundtrips_gradient() {
        let p = Param::new(Tensor::arange(6), "p");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let y = tape.reshape(x, &[2, 3]);
        assert_eq!(tape.dims(y), vec![2, 3]);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(p.grad().dims(), &[6]);
        assert_eq!(p.grad().sum_all(), 6.0);
    }

    #[test]
    fn flatten_batch_merges_trailing_dims() {
        let p = Param::new(Tensor::zeros(&[2, 3, 4]), "p");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let y = tape.flatten_batch(x);
        assert_eq!(tape.dims(y), vec![2, 12]);
    }

    #[test]
    #[should_panic]
    fn reshape_with_wrong_volume_panics() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[4]));
        let _ = tape.reshape(x, &[3]);
    }
}
