//! Differentiable operations recorded on a [`crate::Tape`].
//!
//! Each submodule adds inherent methods to [`crate::Tape`]:
//!
//! * [`arith`] — element-wise arithmetic and bias broadcasting;
//! * [`matmul`] — dense matrix multiplication;
//! * [`conv`] — causal dilated 1-D convolution;
//! * [`activations`] — ReLU, sigmoid, tanh and dropout;
//! * [`norm`] — batch normalisation over `[N, C, T]`;
//! * [`pool`] — average pooling and global time pooling;
//! * [`reduce`] — full reductions to scalars;
//! * [`shape_ops`] — reshape and flatten;
//! * [`loss`] — MSE / MAE / binary-cross-entropy losses;
//! * [`mask`] — the PIT-specific operations: straight-through binarisation,
//!   the γ → M time-mask transformation and time-axis weight masking.

pub mod activations;
pub mod arith;
pub mod conv;
pub mod loss;
pub mod mask;
pub mod matmul;
pub mod norm;
pub mod pool;
pub mod reduce;
pub mod shape_ops;
