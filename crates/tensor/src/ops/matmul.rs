//! Dense matrix multiplication with reverse-mode gradients.

use crate::tape::{Tape, Var};

impl Tape {
    /// Matrix product of two rank-2 nodes: `[M, K] x [K, N] -> [M, N]`.
    ///
    /// Gradients: `dA = dY · Bᵀ`, `dB = Aᵀ · dY`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = av
            .matmul(&bv)
            .unwrap_or_else(|e| panic!("tape matmul: {e}"));
        self.push_binary(a, b, value, move |g| {
            let bt = bv.transpose2().expect("matmul backward transpose");
            let at = av.transpose2().expect("matmul backward transpose");
            let ga = g.matmul(&bt).expect("matmul backward dA");
            let gb = at.matmul(g).expect("matmul backward dB");
            (ga, gb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_param_grad;
    use crate::param::Param;
    use crate::tensor::Tensor;

    #[test]
    fn forward_matches_raw_kernel() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let mut tape = Tape::new();
        let va = tape.constant(a.clone());
        let vb = tape.constant(b.clone());
        let vc = tape.matmul(va, vb);
        assert_eq!(tape.value(vc).data(), a.matmul(&b).unwrap().data());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let a = Param::new(
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, 1.5, -0.7], &[2, 3]).unwrap(),
            "a",
        );
        let b = Param::new(
            Tensor::from_vec(vec![1.0, 0.2, -0.4, 0.9, 1.1, -0.6], &[3, 2]).unwrap(),
            "b",
        );
        let forward = {
            let a = a.clone();
            let b = b.clone();
            move || {
                let mut tape = Tape::new();
                let va = tape.param(&a);
                let vb = tape.param(&b);
                let vc = tape.matmul(va, vb);
                let sq = tape.square(vc);
                let loss = tape.sum(sq);
                tape.value(loss).item()
            }
        };
        a.zero_grad();
        b.zero_grad();
        {
            let mut tape = Tape::new();
            let va = tape.param(&a);
            let vb = tape.param(&b);
            let vc = tape.matmul(va, vb);
            let sq = tape.square(vc);
            let loss = tape.sum(sq);
            tape.backward(loss);
        }
        let err_a = check_param_grad(&a, &a.grad(), &forward, 1e-3);
        let err_b = check_param_grad(&b, &b.grad(), &forward, 1e-3);
        assert!(err_a < 2e-2, "matmul dA mismatch: {err_a}");
        assert!(err_b < 2e-2, "matmul dB mismatch: {err_b}");
    }
}
