//! Batch normalisation over `[N, C, T]` activations.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Batch statistics produced by [`Tape::batch_norm1d`], used by layers to
/// update their running estimates for inference.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Per-channel mean of the current batch, shape `[C]`.
    pub mean: Tensor,
    /// Per-channel (biased) variance of the current batch, shape `[C]`.
    pub var: Tensor,
}

impl Tape {
    /// Training-mode batch normalisation of a `[N, C, T]` node.
    ///
    /// Normalises each channel over the batch and time axes, then applies the
    /// learnable affine transform `gamma * x̂ + beta` (`gamma`, `beta` of
    /// shape `[C]`). Returns the output node together with the batch
    /// statistics so the calling layer can maintain running averages.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn batch_norm1d(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> (Var, BatchStats) {
        let xv = self.value(x).clone();
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        assert_eq!(xv.dims().len(), 3, "batch_norm1d expects [N, C, T]");
        let (n, c, t) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        assert_eq!(gv.dims(), [c], "batch_norm1d: gamma must have shape [C]");
        assert_eq!(bv.dims(), [c], "batch_norm1d: beta must have shape [C]");
        let m = (n * t) as f32;

        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for cc in 0..c {
            let mut acc = 0.0f32;
            for bn in 0..n {
                let base = (bn * c + cc) * t;
                for tt in 0..t {
                    acc += xv.data()[base + tt];
                }
            }
            mean[cc] = acc / m;
            let mut vacc = 0.0f32;
            for bn in 0..n {
                let base = (bn * c + cc) * t;
                for tt in 0..t {
                    let d = xv.data()[base + tt] - mean[cc];
                    vacc += d * d;
                }
            }
            var[cc] = vacc / m;
        }

        let mut xhat = vec![0.0f32; xv.len()];
        let mut out = vec![0.0f32; xv.len()];
        for cc in 0..c {
            let inv_std = 1.0 / (var[cc] + eps).sqrt();
            for bn in 0..n {
                let base = (bn * c + cc) * t;
                for tt in 0..t {
                    let h = (xv.data()[base + tt] - mean[cc]) * inv_std;
                    xhat[base + tt] = h;
                    out[base + tt] = gv.data()[cc] * h + bv.data()[cc];
                }
            }
        }

        let stats = BatchStats {
            mean: Tensor::from_vec(mean.clone(), &[c]).expect("bn mean shape"),
            var: Tensor::from_vec(var.clone(), &[c]).expect("bn var shape"),
        };
        let xhat_t = Tensor::from_vec(xhat, &[n, c, t]).expect("bn xhat shape");
        let value = Tensor::from_vec(out, &[n, c, t]).expect("bn out shape");

        let node = self.push(
            value,
            vec![x.0, gamma.0, beta.0],
            Some(Box::new(move |g| {
                // Standard batch-norm backward over (N, T) per channel.
                let mut gx = Tensor::zeros(&[n, c, t]);
                let mut ggamma = vec![0.0f32; c];
                let mut gbeta = vec![0.0f32; c];
                for cc in 0..c {
                    let inv_std = 1.0 / (var[cc] + eps).sqrt();
                    let gm = gv.data()[cc];
                    let mut sum_dy = 0.0f32;
                    let mut sum_dy_xhat = 0.0f32;
                    for bn in 0..n {
                        let base = (bn * c + cc) * t;
                        for tt in 0..t {
                            let dy = g.data()[base + tt];
                            let h = xhat_t.data()[base + tt];
                            sum_dy += dy;
                            sum_dy_xhat += dy * h;
                        }
                    }
                    ggamma[cc] = sum_dy_xhat;
                    gbeta[cc] = sum_dy;
                    for bn in 0..n {
                        let base = (bn * c + cc) * t;
                        for tt in 0..t {
                            let dy = g.data()[base + tt];
                            let h = xhat_t.data()[base + tt];
                            gx.data_mut()[base + tt] =
                                gm * inv_std / m * (m * dy - sum_dy - h * sum_dy_xhat);
                        }
                    }
                }
                vec![
                    gx,
                    Tensor::from_vec(ggamma, &[c]).expect("bn dgamma shape"),
                    Tensor::from_vec(gbeta, &[c]).expect("bn dbeta shape"),
                ]
            })),
            None,
        );
        (node, stats)
    }

    /// Inference-mode batch normalisation using fixed (running) statistics.
    ///
    /// `running_mean` / `running_var` are constants of shape `[C]`; gradients
    /// still flow into `x`, `gamma` and `beta` (useful for fine-tuning with
    /// frozen statistics).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn batch_norm1d_inference(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> Var {
        let xv = self.value(x).clone();
        assert_eq!(
            xv.dims().len(),
            3,
            "batch_norm1d_inference expects [N, C, T]"
        );
        let (n, c, t) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        assert_eq!(running_mean.dims(), [c]);
        assert_eq!(running_var.dims(), [c]);
        // y = gamma * (x - mu) * inv_std + beta, with mu / inv_std constant:
        // implement via existing ops so gradients are exact and simple.
        let mut scale = vec![0.0f32; c];
        let mut shift = vec![0.0f32; c];
        for cc in 0..c {
            let inv_std = 1.0 / (running_var.data()[cc] + eps).sqrt();
            scale[cc] = inv_std;
            shift[cc] = -running_mean.data()[cc] * inv_std;
        }
        // x_hat = x * scale_c + shift_c  (per channel), then y = gamma_c * x_hat + beta_c
        let scale_t = Tensor::from_vec(scale, &[c]).expect("bn scale shape");
        let shift_t = Tensor::from_vec(shift, &[c]).expect("bn shift shape");
        let vscale = self.constant(broadcast_channels(&scale_t, n, c, t));
        let vshift = self.constant(broadcast_channels(&shift_t, n, c, t));
        let gammab = {
            let gv = self.value(gamma).clone();
            self.broadcast_channels_node(gamma, &gv, n, t)
        };
        let betab = {
            let bv = self.value(beta).clone();
            self.broadcast_channels_node(beta, &bv, n, t)
        };
        let xs = self.mul(x, vscale);
        let xhat = self.add(xs, vshift);
        let scaled = self.mul(xhat, gammab);
        self.add(scaled, betab)
    }

    /// Expands a `[C]` node into `[N, C, T]` by repetition (gradient sums back).
    fn broadcast_channels_node(&mut self, v: Var, vv: &Tensor, n: usize, t: usize) -> Var {
        let c = vv.dims()[0];
        let value = broadcast_channels(vv, n, c, t);
        self.push_unary(v, value, move |g| {
            let mut out = vec![0.0f32; c];
            for bn in 0..n {
                for cc in 0..c {
                    let base = (bn * c + cc) * t;
                    for tt in 0..t {
                        out[cc] += g.data()[base + tt];
                    }
                }
            }
            Tensor::from_vec(out, &[c]).expect("broadcast backward shape")
        })
    }
}

fn broadcast_channels(v: &Tensor, n: usize, c: usize, t: usize) -> Tensor {
    let mut out = vec![0.0f32; n * c * t];
    for bn in 0..n {
        for cc in 0..c {
            let base = (bn * c + cc) * t;
            for tt in 0..t {
                out[base + tt] = v.data()[cc];
            }
        }
    }
    Tensor::from_vec(out, &[n, c, t]).expect("broadcast shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_param_grad;
    use crate::init;
    use crate::param::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalises_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Param::new(init::uniform(&mut rng, &[4, 3, 8], 5.0), "x");
        let gamma = Param::new(Tensor::ones(&[3]), "gamma");
        let beta = Param::new(Tensor::zeros(&[3]), "beta");
        let mut tape = Tape::new();
        let vx = tape.param(&x);
        let vg = tape.param(&gamma);
        let vb = tape.param(&beta);
        let (y, stats) = tape.batch_norm1d(vx, vg, vb, 1e-5);
        let yv = tape.value(y);
        // Per-channel mean of the output should be ~0 and variance ~1.
        let (n, c, t) = (4, 3, 8);
        for cc in 0..c {
            let mut mean = 0.0;
            let mut var = 0.0;
            for bn in 0..n {
                for tt in 0..t {
                    mean += yv.data()[(bn * c + cc) * t + tt];
                }
            }
            mean /= (n * t) as f32;
            for bn in 0..n {
                for tt in 0..t {
                    let d = yv.data()[(bn * c + cc) * t + tt] - mean;
                    var += d * d;
                }
            }
            var /= (n * t) as f32;
            assert!(mean.abs() < 1e-4, "channel {cc} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {cc} var {var}");
        }
        assert_eq!(stats.mean.dims(), &[3]);
        assert_eq!(stats.var.dims(), &[3]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Param::new(init::uniform(&mut rng, &[2, 2, 4], 1.0), "x");
        let gamma = Param::new(init::uniform(&mut rng, &[2], 1.0), "gamma");
        let beta = Param::new(init::uniform(&mut rng, &[2], 1.0), "beta");
        let forward = {
            let (x, gamma, beta) = (x.clone(), gamma.clone(), beta.clone());
            move || {
                let mut tape = Tape::new();
                let vx = tape.param(&x);
                let vg = tape.param(&gamma);
                let vb = tape.param(&beta);
                let (y, _) = tape.batch_norm1d(vx, vg, vb, 1e-5);
                let sq = tape.square(y);
                let loss = tape.sum(sq);
                tape.value(loss).item()
            }
        };
        x.zero_grad();
        gamma.zero_grad();
        beta.zero_grad();
        {
            let mut tape = Tape::new();
            let vx = tape.param(&x);
            let vg = tape.param(&gamma);
            let vb = tape.param(&beta);
            let (y, _) = tape.batch_norm1d(vx, vg, vb, 1e-5);
            let sq = tape.square(y);
            let loss = tape.sum(sq);
            tape.backward(loss);
        }
        assert!(check_param_grad(&x, &x.grad(), &forward, 1e-3) < 5e-2, "dX");
        assert!(
            check_param_grad(&gamma, &gamma.grad(), &forward, 1e-3) < 5e-2,
            "dGamma"
        );
        assert!(
            check_param_grad(&beta, &beta.grad(), &forward, 1e-3) < 5e-2,
            "dBeta"
        );
    }

    #[test]
    fn inference_mode_uses_running_stats() {
        let x = Param::new(Tensor::from_vec(vec![2.0, 4.0], &[1, 1, 2]).unwrap(), "x");
        let gamma = Param::new(Tensor::ones(&[1]), "gamma");
        let beta = Param::new(Tensor::zeros(&[1]), "beta");
        let running_mean = Tensor::from_vec(vec![3.0], &[1]).unwrap();
        let running_var = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut tape = Tape::new();
        let vx = tape.param(&x);
        let vg = tape.param(&gamma);
        let vb = tape.param(&beta);
        let y = tape.batch_norm1d_inference(vx, vg, vb, &running_mean, &running_var, 0.0);
        let yv = tape.value(y);
        assert!((yv.data()[0] - (-1.0)).abs() < 1e-5);
        assert!((yv.data()[1] - 1.0).abs() < 1e-5);
        // Gradient flows back into gamma via the broadcast path.
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(gamma.grad().data(), &[0.0]); // xhat values sum to zero here
        assert_eq!(beta.grad().data(), &[2.0]);
    }
}
