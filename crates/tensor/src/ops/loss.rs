//! Loss functions used by the PIT benchmarks.
//!
//! All losses reduce to a rank-0 scalar node and treat the target as a
//! constant (no gradient flows into it), matching how the benchmarks use
//! them: mean-squared / mean-absolute error for the PPG heart-rate
//! regression, and binary cross-entropy with logits ("frame-level NLL") for
//! the polyphonic-music task.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Mean squared error between a prediction node and a constant target.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let pv = self.value(pred).clone();
        assert!(
            pv.shape().same_as(target.shape()),
            "mse_loss: prediction shape {} vs target shape {}",
            pv.shape(),
            target.shape()
        );
        let n = pv.len().max(1) as f32;
        let diff = pv.sub(target).expect("mse diff");
        let value = Tensor::scalar(diff.data().iter().map(|d| d * d).sum::<f32>() / n);
        self.push_unary(pred, value, move |g| diff.mul_scalar(2.0 * g.item() / n))
    }

    /// Mean absolute error between a prediction node and a constant target.
    ///
    /// This is the MAE metric (in bpm) used for the PPG-Dalia benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mae_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let pv = self.value(pred).clone();
        assert!(
            pv.shape().same_as(target.shape()),
            "mae_loss: prediction shape {} vs target shape {}",
            pv.shape(),
            target.shape()
        );
        let n = pv.len().max(1) as f32;
        let diff = pv.sub(target).expect("mae diff");
        let value = Tensor::scalar(diff.data().iter().map(|d| d.abs()).sum::<f32>() / n);
        self.push_unary(pred, value, move |g| {
            diff.map(|d| if d == 0.0 { 0.0 } else { d.signum() })
                .mul_scalar(g.item() / n)
        })
    }

    /// Binary cross-entropy with logits, averaged over all elements.
    ///
    /// For multi-label frame prediction (88 piano keys per time step) this is
    /// the per-frame negative log-likelihood reported as "NLL" in the paper.
    /// Uses the numerically stable formulation
    /// `max(z, 0) - z*y + ln(1 + exp(-|z|))`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn bce_with_logits_loss(&mut self, logits: Var, target: &Tensor) -> Var {
        let zv = self.value(logits).clone();
        assert!(
            zv.shape().same_as(target.shape()),
            "bce_with_logits_loss: logits shape {} vs target shape {}",
            zv.shape(),
            target.shape()
        );
        let n = zv.len().max(1) as f32;
        let mut total = 0.0f32;
        for (&z, &y) in zv.data().iter().zip(target.data().iter()) {
            total += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        }
        let value = Tensor::scalar(total / n);
        let target = target.clone();
        self.push_unary(logits, value, move |g| {
            // d/dz = sigmoid(z) - y
            let scale = g.item() / n;
            zv.zip_map(&target, |z, y| (1.0 / (1.0 + (-z).exp()) - y) * scale)
                .expect("bce backward shape")
        })
    }

    /// Binary cross-entropy with logits, summed over the label dimension and
    /// averaged over batch and time. This matches the "NLL per frame"
    /// convention of Bai et al. for polyphonic music: the loss of one frame is
    /// the sum over the 88 keys, and frames are averaged.
    ///
    /// `logits` must be `[N, C, T]`; the target must have the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `logits` is not rank 3.
    pub fn bce_frame_nll_loss(&mut self, logits: Var, target: &Tensor) -> Var {
        let dims = self.dims(logits);
        assert_eq!(dims.len(), 3, "bce_frame_nll_loss expects [N, C, T] logits");
        let scale = dims[1] as f32; // keys per frame
        let per_element = self.bce_with_logits_loss(logits, target);
        self.scale(per_element, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_param_grad;
    use crate::param::Param;

    #[test]
    fn mse_forward_value() {
        let p = Param::new(Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap(), "p");
        let t = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let l = tape.mse_loss(x, &t);
        assert!((tape.value(l).item() - 2.5).abs() < 1e-6); // (1 + 4) / 2
        tape.backward(l);
        assert_eq!(p.grad().data(), &[1.0, 2.0]);
    }

    #[test]
    fn mae_forward_value_and_grad() {
        let p = Param::new(Tensor::from_vec(vec![2.0, -1.0], &[2]).unwrap(), "p");
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let l = tape.mae_loss(x, &t);
        assert!((tape.value(l).item() - 1.5).abs() < 1e-6);
        tape.backward(l);
        assert_eq!(p.grad().data(), &[0.5, -0.5]);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let p = Param::new(Tensor::from_vec(vec![0.0], &[1]).unwrap(), "p");
        let t = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let l = tape.bce_with_logits_loss(x, &t);
        // -ln(sigmoid(0)) = ln 2
        assert!((tape.value(l).item() - std::f32::consts::LN_2).abs() < 1e-6);
        tape.backward(l);
        assert!((p.grad().data()[0] - (-0.5)).abs() < 1e-6);
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let p = Param::new(
            Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.7], &[4]).unwrap(),
            "p",
        );
        let t = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]).unwrap();
        let forward = {
            let (p, t) = (p.clone(), t.clone());
            move || {
                let mut tape = Tape::new();
                let x = tape.param(&p);
                let l = tape.bce_with_logits_loss(x, &t);
                tape.value(l).item()
            }
        };
        {
            let mut tape = Tape::new();
            let x = tape.param(&p);
            let l = tape.bce_with_logits_loss(x, &t);
            tape.backward(l);
        }
        assert!(check_param_grad(&p, &p.grad(), &forward, 1e-3) < 1e-2);
    }

    #[test]
    fn frame_nll_scales_by_key_count() {
        let p = Param::new(Tensor::zeros(&[1, 4, 2]), "p");
        let t = Tensor::ones(&[1, 4, 2]);
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let frame = tape.bce_frame_nll_loss(x, &t);
        let elem = {
            let mut tape2 = Tape::new();
            let x2 = tape2.param(&p);
            let l = tape2.bce_with_logits_loss(x2, &t);
            tape2.value(l).item()
        };
        assert!((tape.value(frame).item() - 4.0 * elem).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let p = Param::new(Tensor::zeros(&[2]), "p");
        let t = Tensor::zeros(&[3]);
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let _ = tape.mse_loss(x, &t);
    }
}
