//! Causal dilated 1-D convolution with reverse-mode gradients.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Causal dilated 1-D convolution.
    ///
    /// * `x`: input node of shape `[N, C_in, T]`
    /// * `w`: filter node of shape `[C_out, C_in, K]`
    /// * `bias`: optional bias node of shape `[C_out]`
    /// * `dilation`: time step between consecutive taps (>= 1)
    ///
    /// Implements Eq. (1) of the PIT paper: the output at time `t` only
    /// depends on inputs at times `<= t` (left zero padding).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or `dilation == 0`.
    pub fn conv1d_causal(&mut self, x: Var, w: Var, bias: Option<Var>, dilation: usize) -> Var {
        let xv = self.value(x).clone();
        let wv = self.value(w).clone();
        let value = xv
            .conv1d_causal(&wv, None, dilation)
            .unwrap_or_else(|e| panic!("tape conv1d_causal: {e}"));
        let x_dims = xv.dims().to_vec();
        let k = wv.dims()[2];
        let conv = self.push_binary(x, w, value, move |g| {
            let gx = Tensor::conv1d_causal_grad_input(g, &wv, &x_dims, dilation)
                .expect("conv1d backward input");
            let gw = Tensor::conv1d_causal_grad_weight(&xv, g, k, dilation)
                .expect("conv1d backward weight");
            (gx, gw)
        });
        match bias {
            Some(b) => self.add_bias_channels(conv, b),
            None => conv,
        }
    }

    /// Causal dilated 1-D convolution with the PIT time mask fused into the
    /// weight gather: computes `conv1d(x, w ⊙ m)` in one pass, without
    /// recording a materialised `w ⊙ m` node (Eq. 1 + Eq. 5 of the paper).
    ///
    /// * `x`: input node of shape `[N, C_in, T]`
    /// * `w`: filter node of shape `[C_out, C_in, K]`
    /// * `m`: time-mask node of shape `[K]`
    /// * `bias`: optional bias node of shape `[C_out]`
    ///
    /// Fully masked taps are skipped by the forward and input-gradient
    /// kernels, so a pruned layer trains at close to the cost of the dilated
    /// network it deploys as. The weight gradient stays dense: the
    /// straight-through estimator needs `∂L/∂m` at currently-masked taps to
    /// let γ recover them.
    ///
    /// Gradients: `dx = conv_grad_input(g, w ⊙ m)`,
    /// `dw = conv_grad_weight(x, g) ⊙ m`,
    /// `dm[k] = Σ_{co, ci} conv_grad_weight(x, g)[co, ci, k] · w[co, ci, k]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or `dilation == 0`.
    pub fn conv1d_causal_masked(
        &mut self,
        x: Var,
        w: Var,
        m: Var,
        bias: Option<Var>,
        dilation: usize,
    ) -> Var {
        let xv = self.value(x).clone();
        let wv = self.value(w).clone();
        let mv = self.value(m).clone();
        let value = xv
            .conv1d_causal_masked(&wv, &mv, None, dilation)
            .unwrap_or_else(|e| panic!("tape conv1d_causal_masked: {e}"));
        let x_dims = xv.dims().to_vec();
        let (c_out, c_in, k) = (wv.dims()[0], wv.dims()[1], wv.dims()[2]);
        let conv = self.push_ternary(x, w, m, value, move |g| {
            let gx = Tensor::conv1d_causal_masked_grad_input(g, &wv, &mv, &x_dims, dilation)
                .expect("masked conv backward input");
            let gwm = Tensor::conv1d_causal_grad_weight(&xv, g, k, dilation)
                .expect("masked conv backward weight");
            // Split d(w ⊙ m) into the two factors' gradients.
            let mut gw = gwm.clone();
            let mut gm = vec![0.0f32; k];
            for co in 0..c_out {
                for ci in 0..c_in {
                    let base = (co * c_in + ci) * k;
                    for kk in 0..k {
                        gm[kk] += gwm.data()[base + kk] * wv.data()[base + kk];
                        gw.data_mut()[base + kk] = gwm.data()[base + kk] * mv.data()[kk];
                    }
                }
            }
            (gx, gw, Tensor::from_vec(gm, &[k]).expect("mask grad shape"))
        });
        match bias {
            Some(b) => self.add_bias_channels(conv, b),
            None => conv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_param_grad;
    use crate::init;
    use crate::param::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_raw_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::uniform(&mut rng, &[2, 3, 10], 1.0);
        let w = init::uniform(&mut rng, &[4, 3, 3], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let vw = tape.constant(w.clone());
        let vy = tape.conv1d_causal(vx, vw, None, 2);
        assert!(tape
            .value(vy)
            .approx_eq(&x.conv1d_causal(&w, None, 2).unwrap(), 1e-6));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Param::new(init::uniform(&mut rng, &[1, 2, 6], 1.0), "x");
        let w = Param::new(init::uniform(&mut rng, &[2, 2, 3], 1.0), "w");
        let b = Param::new(init::uniform(&mut rng, &[2], 1.0), "b");
        for dilation in [1usize, 2] {
            let forward = {
                let (x, w, b) = (x.clone(), w.clone(), b.clone());
                move || {
                    let mut tape = Tape::new();
                    let vx = tape.param(&x);
                    let vw = tape.param(&w);
                    let vb = tape.param(&b);
                    let vy = tape.conv1d_causal(vx, vw, Some(vb), dilation);
                    let sq = tape.square(vy);
                    let loss = tape.sum(sq);
                    tape.value(loss).item()
                }
            };
            x.zero_grad();
            w.zero_grad();
            b.zero_grad();
            {
                let mut tape = Tape::new();
                let vx = tape.param(&x);
                let vw = tape.param(&w);
                let vb = tape.param(&b);
                let vy = tape.conv1d_causal(vx, vw, Some(vb), dilation);
                let sq = tape.square(vy);
                let loss = tape.sum(sq);
                tape.backward(loss);
            }
            assert!(
                check_param_grad(&x, &x.grad(), &forward, 1e-3) < 2e-2,
                "dX mismatch (d={dilation})"
            );
            assert!(
                check_param_grad(&w, &w.grad(), &forward, 1e-3) < 2e-2,
                "dW mismatch (d={dilation})"
            );
            assert!(
                check_param_grad(&b, &b.grad(), &forward, 1e-3) < 2e-2,
                "dB mismatch (d={dilation})"
            );
        }
    }

    #[test]
    fn fused_masked_conv_matches_unfused_composition() {
        // conv1d_causal_masked(x, w, m) must equal
        // conv1d_causal(x, mul_time_mask(w, m)) in value AND in every gradient.
        let mut rng = StdRng::seed_from_u64(21);
        let x = Param::new(init::uniform(&mut rng, &[2, 3, 12], 1.0), "x");
        let w = Param::new(init::uniform(&mut rng, &[4, 3, 5], 1.0), "w");
        let b = Param::new(init::uniform(&mut rng, &[4], 1.0), "b");
        // Non-binary mask values, including an exact zero, to exercise the
        // skipped-tap path and the generic product rule.
        let m = Param::new(
            Tensor::from_vec(vec![1.0, 0.0, 0.5, 2.0, 0.0], &[5]).unwrap(),
            "m",
        );

        let run = |fused: bool| -> (Tensor, Vec<Vec<f32>>) {
            for p in [&x, &w, &b, &m] {
                p.zero_grad();
            }
            let mut tape = Tape::new();
            let vx = tape.param(&x);
            let vw = tape.param(&w);
            let vb = tape.param(&b);
            let vm = tape.param(&m);
            let y = if fused {
                tape.conv1d_causal_masked(vx, vw, vm, Some(vb), 2)
            } else {
                let wm = tape.mul_time_mask(vw, vm);
                tape.conv1d_causal(vx, wm, Some(vb), 2)
            };
            let sq = tape.square(y);
            let loss = tape.sum(sq);
            tape.backward(loss);
            let grads = [&x, &w, &b, &m]
                .iter()
                .map(|p| p.grad().data().to_vec())
                .collect();
            (tape.value(y).clone(), grads)
        };

        let (y_fused, g_fused) = run(true);
        let (y_unfused, g_unfused) = run(false);
        assert!(y_fused.approx_eq(&y_unfused, 1e-5), "forward mismatch");
        for (name, (gf, gu)) in ["x", "w", "b", "m"]
            .iter()
            .zip(g_fused.iter().zip(&g_unfused))
        {
            let diff = gf
                .iter()
                .zip(gu.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-4, "d{name} mismatch: {diff}");
        }
    }

    #[test]
    fn fused_masked_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(22);
        let x = Param::new(init::uniform(&mut rng, &[1, 2, 8], 1.0), "x");
        let w = Param::new(init::uniform(&mut rng, &[2, 2, 3], 1.0), "w");
        let m = Param::new(Tensor::from_vec(vec![1.0, 0.4, 0.9], &[3]).unwrap(), "m");
        let forward = {
            let (x, w, m) = (x.clone(), w.clone(), m.clone());
            move || {
                let mut tape = Tape::new();
                let vx = tape.param(&x);
                let vw = tape.param(&w);
                let vm = tape.param(&m);
                let y = tape.conv1d_causal_masked(vx, vw, vm, None, 2);
                let sq = tape.square(y);
                let loss = tape.sum(sq);
                tape.value(loss).item()
            }
        };
        for p in [&x, &w, &m] {
            p.zero_grad();
        }
        {
            let mut tape = Tape::new();
            let vx = tape.param(&x);
            let vw = tape.param(&w);
            let vm = tape.param(&m);
            let y = tape.conv1d_causal_masked(vx, vw, vm, None, 2);
            let sq = tape.square(y);
            let loss = tape.sum(sq);
            tape.backward(loss);
        }
        assert!(check_param_grad(&x, &x.grad(), &forward, 1e-3) < 2e-2, "dX");
        assert!(check_param_grad(&w, &w.grad(), &forward, 1e-3) < 2e-2, "dW");
        assert!(check_param_grad(&m, &m.grad(), &forward, 1e-3) < 2e-2, "dM");
    }

    #[test]
    fn fast_tape_conv_matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(23);
        // Odd geometry on purpose: see the kernel-level oracle tests for the
        // full grid; this checks the tape wiring end to end.
        let x = init::uniform(&mut rng, &[1, 5, 19], 1.0);
        let w = init::uniform(&mut rng, &[7, 5, 4], 1.0);
        let y_fast = x.conv1d_causal(&w, None, 3).unwrap();
        let y_naive = x.conv1d_causal_naive(&w, None, 3).unwrap();
        assert!(y_fast.approx_eq(&y_naive, 1e-4));
    }
}
