//! Causal dilated 1-D convolution with reverse-mode gradients.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Causal dilated 1-D convolution.
    ///
    /// * `x`: input node of shape `[N, C_in, T]`
    /// * `w`: filter node of shape `[C_out, C_in, K]`
    /// * `bias`: optional bias node of shape `[C_out]`
    /// * `dilation`: time step between consecutive taps (>= 1)
    ///
    /// Implements Eq. (1) of the PIT paper: the output at time `t` only
    /// depends on inputs at times `<= t` (left zero padding).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or `dilation == 0`.
    pub fn conv1d_causal(&mut self, x: Var, w: Var, bias: Option<Var>, dilation: usize) -> Var {
        let xv = self.value(x).clone();
        let wv = self.value(w).clone();
        let value = xv
            .conv1d_causal(&wv, None, dilation)
            .unwrap_or_else(|e| panic!("tape conv1d_causal: {e}"));
        let x_dims = xv.dims().to_vec();
        let k = wv.dims()[2];
        let conv = self.push_binary(x, w, value, move |g| {
            let gx = Tensor::conv1d_causal_grad_input(g, &wv, &x_dims, dilation)
                .expect("conv1d backward input");
            let gw = Tensor::conv1d_causal_grad_weight(&xv, g, k, dilation)
                .expect("conv1d backward weight");
            (gx, gw)
        });
        match bias {
            Some(b) => self.add_bias_channels(conv, b),
            None => conv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_param_grad;
    use crate::init;
    use crate::param::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_raw_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::uniform(&mut rng, &[2, 3, 10], 1.0);
        let w = init::uniform(&mut rng, &[4, 3, 3], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let vw = tape.constant(w.clone());
        let vy = tape.conv1d_causal(vx, vw, None, 2);
        assert!(tape
            .value(vy)
            .approx_eq(&x.conv1d_causal(&w, None, 2).unwrap(), 1e-6));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Param::new(init::uniform(&mut rng, &[1, 2, 6], 1.0), "x");
        let w = Param::new(init::uniform(&mut rng, &[2, 2, 3], 1.0), "w");
        let b = Param::new(init::uniform(&mut rng, &[2], 1.0), "b");
        for dilation in [1usize, 2] {
            let forward = {
                let (x, w, b) = (x.clone(), w.clone(), b.clone());
                move || {
                    let mut tape = Tape::new();
                    let vx = tape.param(&x);
                    let vw = tape.param(&w);
                    let vb = tape.param(&b);
                    let vy = tape.conv1d_causal(vx, vw, Some(vb), dilation);
                    let sq = tape.square(vy);
                    let loss = tape.sum(sq);
                    tape.value(loss).item()
                }
            };
            x.zero_grad();
            w.zero_grad();
            b.zero_grad();
            {
                let mut tape = Tape::new();
                let vx = tape.param(&x);
                let vw = tape.param(&w);
                let vb = tape.param(&b);
                let vy = tape.conv1d_causal(vx, vw, Some(vb), dilation);
                let sq = tape.square(vy);
                let loss = tape.sum(sq);
                tape.backward(loss);
            }
            assert!(
                check_param_grad(&x, &x.grad(), &forward, 1e-3) < 2e-2,
                "dX mismatch (d={dilation})"
            );
            assert!(
                check_param_grad(&w, &w.grad(), &forward, 1e-3) < 2e-2,
                "dW mismatch (d={dilation})"
            );
            assert!(
                check_param_grad(&b, &b.grad(), &forward, 1e-3) < 2e-2,
                "dB mismatch (d={dilation})"
            );
        }
    }
}
