//! Full reductions to rank-0 scalars.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Sum of all elements, producing a scalar node.
    pub fn sum(&mut self, x: Var) -> Var {
        let xv = self.value(x).clone();
        let value = Tensor::scalar(xv.sum_all());
        let dims = xv.dims().to_vec();
        self.push_unary(x, value, move |g| Tensor::full(&dims, g.item()))
    }

    /// Mean of all elements, producing a scalar node.
    pub fn mean(&mut self, x: Var) -> Var {
        let xv = self.value(x).clone();
        let n = xv.len().max(1) as f32;
        let value = Tensor::scalar(xv.mean_all());
        let dims = xv.dims().to_vec();
        self.push_unary(x, value, move |g| Tensor::full(&dims, g.item() / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    #[test]
    fn sum_gradient_is_ones() {
        let p = Param::new(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(), "p");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let s = tape.sum(x);
        assert_eq!(tape.value(s).item(), 6.0);
        tape.backward(s);
        assert_eq!(p.grad().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_gradient_is_uniform() {
        let p = Param::new(
            Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]).unwrap(),
            "p",
        );
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let m = tape.mean(x);
        assert_eq!(tape.value(m).item(), 5.0);
        tape.backward(m);
        assert!(p.grad().data().iter().all(|&g| (g - 0.25).abs() < 1e-6));
    }
}
