//! PIT-specific differentiable operations.
//!
//! These ops implement the machinery of Section III of the PIT paper:
//!
//! * [`Tape::binarize_ste`] — BinaryConnect-style binarisation (Eq. 2): a
//!   Heaviside step in the forward pass, an identity (straight-through
//!   estimator) in the backward pass;
//! * [`Tape::pit_time_mask`] — the γ → Γ → M transformation (Eq. 3–4) that
//!   expands the per-layer γ vector into a keep-mask over the `rf_max` filter
//!   taps, restricted to regular power-of-two dilation patterns;
//! * [`Tape::mul_time_mask`] — element-wise masking of a `[C_out, C_in, K]`
//!   filter bank by a `[K]` mask (the `M ⊙ W` product of Eq. 5);
//! * [`Tape::weighted_abs_sum`] — the weighted Lasso term of the size
//!   regulariser (Eq. 6).

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Number of γ parameters (including the constant γ₀) for a given maximum
/// receptive field: `L = ⌊log2(rf_max − 1)⌋ + 1`.
///
/// # Panics
///
/// Panics if `rf_max < 2`.
pub fn gamma_len(rf_max: usize) -> usize {
    assert!(rf_max >= 2, "rf_max must be at least 2, got {rf_max}");
    ((rf_max - 1) as f32).log2().floor() as usize + 1
}

/// Which Γ index gates filter tap `i` (tap 0 is always alive).
///
/// Tap `i` survives under dilation `d` iff `d` divides `i`; with power-of-two
/// dilations this means tap `i` is controlled by `Γ_{min(tz(i), L-1)}` where
/// `tz` is the number of trailing zeros of `i`.
pub fn gamma_index_for_tap(i: usize, l: usize) -> usize {
    debug_assert!(i >= 1);
    (i.trailing_zeros() as usize).min(l - 1)
}

impl Tape {
    /// Straight-through binarisation (Eq. 2 of the paper).
    ///
    /// Forward: `1` where `x >= threshold`, else `0`. Backward: identity
    /// (the gradient passes through unchanged).
    pub fn binarize_ste(&mut self, x: Var, threshold: f32) -> Var {
        let value = self
            .value(x)
            .map(|v| if v >= threshold { 1.0 } else { 0.0 });
        self.push_unary(x, value, |g| g.clone())
    }

    /// Builds the PIT time mask `M` (length `rf_max`) from the trainable tail
    /// of the γ vector (`γ_1 .. γ_{L−1}`, length `L − 1`); γ₀ is the constant 1.
    ///
    /// `M[0] = 1`; for `i >= 1`, `M[i] = Γ_{v(i)}` with
    /// `Γ_j = Π_{k=0}^{L−1−j} γ_k` and `v(i) = min(tz(i), L−1)`.
    ///
    /// # Panics
    ///
    /// Panics if the γ tail length is not `L − 1` for the given `rf_max`.
    pub fn pit_time_mask(&mut self, gamma_tail: Var, rf_max: usize) -> Var {
        let l = gamma_len(rf_max);
        let gt = self.value(gamma_tail).clone();
        assert_eq!(
            gt.dims(),
            [l - 1],
            "pit_time_mask: expected gamma tail of length {} for rf_max {}, got {:?}",
            l - 1,
            rf_max,
            gt.dims()
        );
        // Full gamma vector with the constant gamma_0 = 1 prepended.
        let full_gamma = |tail: &Tensor| -> Vec<f32> {
            let mut g = Vec::with_capacity(l);
            g.push(1.0);
            g.extend_from_slice(tail.data());
            g
        };
        let g = full_gamma(&gt);
        // Gamma products: Gamma_j = prod_{k=0}^{l-1-j} g[k].
        let gamma_products = |g: &[f32]| -> Vec<f32> {
            (0..l)
                .map(|j| g[..=(l - 1 - j)].iter().product::<f32>())
                .collect()
        };
        let big_gamma = gamma_products(&g);
        let mut m = vec![0.0f32; rf_max];
        m[0] = 1.0;
        for (i, slot) in m.iter_mut().enumerate().skip(1) {
            *slot = big_gamma[gamma_index_for_tap(i, l)];
        }
        let value = Tensor::from_vec(m, &[rf_max]).expect("mask shape");
        self.push_unary(gamma_tail, value, move |grad_m| {
            // dGamma_j accumulated from all taps it gates.
            let mut d_big_gamma = vec![0.0f32; l];
            for i in 1..rf_max {
                d_big_gamma[gamma_index_for_tap(i, l)] += grad_m.data()[i];
            }
            // dgamma_k = sum_j [k <= l-1-j] dGamma_j * prod_{m != k, m <= l-1-j} g[m]
            let mut dg = vec![0.0f32; l];
            for (j, &dgj) in d_big_gamma.iter().enumerate() {
                if dgj == 0.0 {
                    continue;
                }
                let upper = l - 1 - j;
                for k in 0..=upper {
                    let prod_others: f32 = (0..=upper).filter(|&m| m != k).map(|m| g[m]).product();
                    dg[k] += dgj * prod_others;
                }
            }
            // gamma_0 is a constant: only the tail receives gradient.
            Tensor::from_vec(dg[1..].to_vec(), &[l - 1]).expect("gamma grad shape")
        })
    }

    /// Multiplies a `[C_out, C_in, K]` filter bank by a `[K]` time mask
    /// (the `M_i ⊙ W_i` product of Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 3 or the mask length differs from `K`.
    pub fn mul_time_mask(&mut self, w: Var, m: Var) -> Var {
        let wv = self.value(w).clone();
        let mv = self.value(m).clone();
        assert_eq!(
            wv.dims().len(),
            3,
            "mul_time_mask expects [C_out, C_in, K] weights"
        );
        let (c_out, c_in, k) = (wv.dims()[0], wv.dims()[1], wv.dims()[2]);
        assert_eq!(mv.dims(), [k], "mul_time_mask: mask must have shape [K]");
        let mut out = wv.clone();
        for co in 0..c_out {
            for ci in 0..c_in {
                let base = (co * c_in + ci) * k;
                for kk in 0..k {
                    out.data_mut()[base + kk] *= mv.data()[kk];
                }
            }
        }
        self.push_binary(w, m, out, move |g| {
            let mut gw = g.clone();
            let mut gm = vec![0.0f32; k];
            for co in 0..c_out {
                for ci in 0..c_in {
                    let base = (co * c_in + ci) * k;
                    for kk in 0..k {
                        gm[kk] += g.data()[base + kk] * wv.data()[base + kk];
                        gw.data_mut()[base + kk] = g.data()[base + kk] * mv.data()[kk];
                    }
                }
            }
            (gw, Tensor::from_vec(gm, &[k]).expect("mask grad shape"))
        })
    }

    /// Weighted Lasso term `Σ_i coeffs[i] · |x_i|`, producing a scalar node.
    ///
    /// Used for the size regulariser of Eq. 6, where the coefficient of
    /// `|γ_i|` is the number of weights kept alive by that γ.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of elements of `x`.
    pub fn weighted_abs_sum(&mut self, x: Var, coeffs: &[f32]) -> Var {
        let xv = self.value(x).clone();
        assert_eq!(
            coeffs.len(),
            xv.len(),
            "weighted_abs_sum: {} coefficients for {} elements",
            coeffs.len(),
            xv.len()
        );
        let total: f32 = xv
            .data()
            .iter()
            .zip(coeffs.iter())
            .map(|(&v, &c)| c * v.abs())
            .sum();
        let value = Tensor::scalar(total);
        let coeffs = coeffs.to_vec();
        let dims = xv.dims().to_vec();
        self.push_unary(x, value, move |g| {
            let scale = g.item();
            let data: Vec<f32> = xv
                .data()
                .iter()
                .zip(coeffs.iter())
                .map(|(&v, &c)| {
                    if v == 0.0 {
                        0.0
                    } else {
                        scale * c * v.signum()
                    }
                })
                .collect();
            Tensor::from_vec(data, &dims).expect("weighted abs grad shape")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    #[test]
    fn gamma_len_matches_paper_example() {
        // rf_max = 9 -> L = 4 (paper Fig. 2).
        assert_eq!(gamma_len(9), 4);
        assert_eq!(gamma_len(2), 1);
        assert_eq!(gamma_len(3), 2);
        assert_eq!(gamma_len(17), 5);
        assert_eq!(gamma_len(64), 6);
    }

    #[test]
    fn binarize_threshold_and_ste() {
        let p = Param::new(Tensor::from_vec(vec![0.2, 0.5, 0.9], &[3]).unwrap(), "g");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let b = tape.binarize_ste(x, 0.5);
        assert_eq!(tape.value(b).data(), &[0.0, 1.0, 1.0]);
        let s = tape.sum(b);
        tape.backward(s);
        // Straight-through: gradient of sum is all ones regardless of the step.
        assert_eq!(p.grad().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn mask_all_ones_gives_dilation_one() {
        // rf_max = 9, gamma tail all ones -> every tap alive.
        let p = Param::new(Tensor::ones(&[3]), "g");
        let mut tape = Tape::new();
        let g = tape.param(&p);
        let m = tape.pit_time_mask(g, 9);
        assert_eq!(tape.value(m).data(), &[1.0; 9]);
    }

    #[test]
    fn mask_patterns_match_paper_figure2() {
        // rf_max = 9, L = 4. gamma tail = (gamma_1, gamma_2, gamma_3).
        let cases: &[(&[f32], &[f32])] = &[
            // gamma_3 = 0 (others 1): dilation 2 -> taps 0,2,4,6,8 alive.
            (
                &[1.0, 1.0, 0.0],
                &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
            ),
            // gamma_2 = 0: dilation 4 -> taps 0,4,8 alive.
            (
                &[1.0, 0.0, 1.0],
                &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            ),
            // gamma_1 = 0: dilation 8 -> taps 0,8 alive.
            (
                &[0.0, 1.0, 1.0],
                &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            ),
        ];
        for (tail, expected) in cases {
            let p = Param::new(Tensor::from_vec(tail.to_vec(), &[3]).unwrap(), "g");
            let mut tape = Tape::new();
            let g = tape.param(&p);
            let m = tape.pit_time_mask(g, 9);
            assert_eq!(tape.value(m).data(), *expected, "tail {tail:?}");
        }
    }

    #[test]
    fn mask_gradient_counts_gated_taps() {
        // With all gammas = 1, dM_i/dgamma_k = 1 for every tap i gated by a
        // Gamma_j with k <= L-1-j; summing over taps gives the "alive slices"
        // counts of Eq. 6: gamma_1 gates taps {1..8 except multiples of 8} etc.
        let p = Param::new(Tensor::ones(&[3]), "g");
        let mut tape = Tape::new();
        let g = tape.param(&p);
        let m = tape.pit_time_mask(g, 9);
        let s = tape.sum(m);
        tape.backward(s);
        // gamma_1 is in Gamma_0, Gamma_1, Gamma_2 -> taps with tz 0,1,2 => {1,3,5,7},{2,6},{4} = 7 taps
        // gamma_2 is in Gamma_0, Gamma_1 -> {1,3,5,7},{2,6} = 6 taps
        // gamma_3 is in Gamma_0 -> {1,3,5,7} = 4 taps
        assert_eq!(p.grad().data(), &[7.0, 6.0, 4.0]);
    }

    #[test]
    fn mul_time_mask_forward_and_grad() {
        let w = Param::new(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]).unwrap(),
            "w",
        );
        let m = Param::new(Tensor::from_vec(vec![1.0, 0.0, 2.0], &[3]).unwrap(), "m");
        let mut tape = Tape::new();
        let vw = tape.param(&w);
        let vm = tape.param(&m);
        let y = tape.mul_time_mask(vw, vm);
        assert_eq!(tape.value(y).data(), &[1.0, 0.0, 6.0, 4.0, 0.0, 12.0]);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(w.grad().data(), &[1.0, 0.0, 2.0, 1.0, 0.0, 2.0]);
        assert_eq!(m.grad().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn weighted_abs_sum_value_and_grad() {
        let p = Param::new(Tensor::from_vec(vec![0.5, -0.25, 0.0], &[3]).unwrap(), "g");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let l = tape.weighted_abs_sum(x, &[4.0, 2.0, 1.0]);
        assert!((tape.value(l).item() - (4.0 * 0.5 + 2.0 * 0.25)).abs() < 1e-6);
        tape.backward(l);
        assert_eq!(p.grad().data(), &[4.0, -2.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn wrong_gamma_tail_length_panics() {
        let p = Param::new(Tensor::ones(&[2]), "g");
        let mut tape = Tape::new();
        let g = tape.param(&p);
        let _ = tape.pit_time_mask(g, 9); // needs length 3
    }
}
