//! Pooling operations over the time axis.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Average pooling over the time axis of a `[N, C, T]` node.
    ///
    /// The output length is `floor((T - kernel) / stride) + 1`.
    ///
    /// # Panics
    ///
    /// Panics on invalid kernel/stride or rank mismatch.
    pub fn avg_pool1d(&mut self, x: Var, kernel: usize, stride: usize) -> Var {
        let xv = self.value(x).clone();
        let value = xv
            .avg_pool1d(kernel, stride)
            .unwrap_or_else(|e| panic!("tape avg_pool1d: {e}"));
        let in_dims = xv.dims().to_vec();
        self.push_unary(x, value, move |g| {
            Tensor::avg_pool1d_grad(g, &in_dims, kernel, stride).expect("avg_pool1d backward")
        })
    }

    /// Global average pooling over the time axis: `[N, C, T] -> [N, C]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 3.
    pub fn global_avg_pool_time(&mut self, x: Var) -> Var {
        let xv = self.value(x).clone();
        assert_eq!(xv.dims().len(), 3, "global_avg_pool_time expects [N, C, T]");
        let (n, c, t) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        let mut out = vec![0.0f32; n * c];
        for bn in 0..n {
            for cc in 0..c {
                let base = (bn * c + cc) * t;
                let mut acc = 0.0f32;
                for tt in 0..t {
                    acc += xv.data()[base + tt];
                }
                out[bn * c + cc] = acc / t as f32;
            }
        }
        let value = Tensor::from_vec(out, &[n, c]).expect("gap shape");
        self.push_unary(x, value, move |g| {
            let mut gx = vec![0.0f32; n * c * t];
            let inv = 1.0 / t as f32;
            for bn in 0..n {
                for cc in 0..c {
                    let base = (bn * c + cc) * t;
                    let gv = g.data()[bn * c + cc] * inv;
                    for tt in 0..t {
                        gx[base + tt] = gv;
                    }
                }
            }
            Tensor::from_vec(gx, &[n, c, t]).expect("gap backward shape")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    #[test]
    fn avg_pool_forward_and_grad() {
        let x = Param::new(
            Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0, 6.0, 8.0], &[1, 2, 4]).unwrap(),
            "x",
        );
        let mut tape = Tape::new();
        let vx = tape.param(&x);
        let y = tape.avg_pool1d(vx, 2, 2);
        assert_eq!(tape.dims(y), vec![1, 2, 2]);
        assert_eq!(tape.value(y).data(), &[2.0, 6.0, 3.0, 7.0]);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert!(x.grad().data().iter().all(|&g| (g - 0.5).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool_forward_and_grad() {
        let x = Param::new(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0], &[1, 2, 3]).unwrap(),
            "x",
        );
        let mut tape = Tape::new();
        let vx = tape.param(&x);
        let y = tape.global_avg_pool_time(vx);
        assert_eq!(tape.value(y).data(), &[2.0, 20.0]);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert!(x
            .grad()
            .data()
            .iter()
            .all(|&g| (g - 1.0 / 3.0).abs() < 1e-6));
    }
}
