//! Element-wise arithmetic and bias-broadcast operations.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Element-wise addition of two nodes with identical shapes.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self
            .value(a)
            .add(self.value(b))
            .unwrap_or_else(|e| panic!("tape add: {e}"));
        self.push_binary(a, b, value, |g| (g.clone(), g.clone()))
    }

    /// Element-wise subtraction `a - b` of two nodes with identical shapes.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self
            .value(a)
            .sub(self.value(b))
            .unwrap_or_else(|e| panic!("tape sub: {e}"));
        self.push_binary(a, b, value, |g| (g.clone(), g.neg()))
    }

    /// Element-wise multiplication of two nodes with identical shapes.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = av.mul(&bv).unwrap_or_else(|e| panic!("tape mul: {e}"));
        self.push_binary(a, b, value, move |g| {
            (
                g.mul(&bv).expect("mul backward shape"),
                g.mul(&av).expect("mul backward shape"),
            )
        })
    }

    /// Multiplies every element of `a` by the constant `s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).mul_scalar(s);
        self.push_unary(a, value, move |g| g.mul_scalar(s))
    }

    /// Adds the constant `s` to every element of `a`.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).add_scalar(s);
        self.push_unary(a, value, |g| g.clone())
    }

    /// Element-wise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let value = self.value(a).neg();
        self.push_unary(a, value, |g| g.neg())
    }

    /// Element-wise absolute value (sub-gradient 0 at 0).
    pub fn abs(&mut self, a: Var) -> Var {
        let av = self.value(a).clone();
        let value = av.abs();
        self.push_unary(a, value, move |g| {
            g.zip_map(&av, |gi, xi| {
                gi * xi.signum() * if xi == 0.0 { 0.0 } else { 1.0 }
            })
            .expect("abs backward shape")
        })
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let av = self.value(a).clone();
        let value = av.map(|x| x * x);
        self.push_unary(a, value, move |g| {
            g.zip_map(&av, |gi, xi| gi * 2.0 * xi)
                .expect("square backward shape")
        })
    }

    /// Adds a per-channel bias `b` of shape `[C]` to a `[N, C, T]` activation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 3 or the bias length does not match `C`.
    pub fn add_bias_channels(&mut self, x: Var, b: Var) -> Var {
        let xv = self.value(x).clone();
        let bv = self.value(b).clone();
        assert_eq!(xv.dims().len(), 3, "add_bias_channels expects [N, C, T]");
        let (n, c, t) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        assert_eq!(
            bv.dims(),
            [c],
            "add_bias_channels: bias must have shape [C]"
        );
        let mut out = xv.clone();
        for bn in 0..n {
            for cc in 0..c {
                let base = (bn * c + cc) * t;
                let bias = bv.data()[cc];
                for tt in 0..t {
                    out.data_mut()[base + tt] += bias;
                }
            }
        }
        self.push_binary(x, b, out, move |g| {
            let mut gb = vec![0.0f32; c];
            for bn in 0..n {
                for cc in 0..c {
                    let base = (bn * c + cc) * t;
                    for tt in 0..t {
                        gb[cc] += g.data()[base + tt];
                    }
                }
            }
            (
                g.clone(),
                Tensor::from_vec(gb, &[c]).expect("bias grad shape"),
            )
        })
    }

    /// Adds a row bias `b` of shape `[F]` to a `[N, F]` activation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2 or the bias length does not match `F`.
    pub fn add_bias_rows(&mut self, x: Var, b: Var) -> Var {
        let xv = self.value(x).clone();
        let bv = self.value(b).clone();
        assert_eq!(xv.dims().len(), 2, "add_bias_rows expects [N, F]");
        let (n, f) = (xv.dims()[0], xv.dims()[1]);
        assert_eq!(bv.dims(), [f], "add_bias_rows: bias must have shape [F]");
        let mut out = xv.clone();
        for bn in 0..n {
            for ff in 0..f {
                out.data_mut()[bn * f + ff] += bv.data()[ff];
            }
        }
        self.push_binary(x, b, out, move |g| {
            let mut gb = vec![0.0f32; f];
            for bn in 0..n {
                for ff in 0..f {
                    gb[ff] += g.data()[bn * f + ff];
                }
            }
            (
                g.clone(),
                Tensor::from_vec(gb, &[f]).expect("bias grad shape"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn scalar_param(v: f32) -> Param {
        Param::new(Tensor::from_vec(vec![v], &[1]).unwrap(), "p")
    }

    #[test]
    fn add_sub_gradients() {
        let a = scalar_param(2.0);
        let b = scalar_param(5.0);
        let mut tape = Tape::new();
        let va = tape.param(&a);
        let vb = tape.param(&b);
        let s = tape.sub(va, vb); // a - b
        let loss = tape.sum(s);
        tape.backward(loss);
        assert_eq!(a.grad().data(), &[1.0]);
        assert_eq!(b.grad().data(), &[-1.0]);
    }

    #[test]
    fn mul_gradient() {
        let a = scalar_param(3.0);
        let b = scalar_param(4.0);
        let mut tape = Tape::new();
        let va = tape.param(&a);
        let vb = tape.param(&b);
        let m = tape.mul(va, vb);
        let loss = tape.sum(m);
        tape.backward(loss);
        assert_eq!(a.grad().data(), &[4.0]);
        assert_eq!(b.grad().data(), &[3.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = scalar_param(2.0);
        let mut tape = Tape::new();
        let va = tape.param(&a);
        let v = tape.scale(va, 3.0);
        let v = tape.add_scalar(v, 1.0);
        assert_eq!(tape.value(v).data(), &[7.0]);
        let loss = tape.sum(v);
        tape.backward(loss);
        assert_eq!(a.grad().data(), &[3.0]);
    }

    #[test]
    fn neg_abs_square() {
        let a = Param::new(Tensor::from_vec(vec![-2.0, 3.0], &[2]).unwrap(), "a");
        let mut tape = Tape::new();
        let va = tape.param(&a);
        let v = tape.abs(va);
        assert_eq!(tape.value(v).data(), &[2.0, 3.0]);
        let loss = tape.sum(v);
        tape.backward(loss);
        assert_eq!(a.grad().data(), &[-1.0, 1.0]);

        let b = Param::new(Tensor::from_vec(vec![-2.0, 3.0], &[2]).unwrap(), "b");
        let mut tape = Tape::new();
        let vb = tape.param(&b);
        let v = tape.square(vb);
        let v = tape.neg(v);
        let loss = tape.sum(v);
        tape.backward(loss);
        assert_eq!(b.grad().data(), &[4.0, -6.0]);
    }

    #[test]
    fn bias_channels_forward_and_grad() {
        let x = Param::new(Tensor::zeros(&[2, 2, 3]), "x");
        let b = Param::new(Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap(), "b");
        let mut tape = Tape::new();
        let vx = tape.param(&x);
        let vb = tape.param(&b);
        let y = tape.add_bias_channels(vx, vb);
        assert_eq!(tape.value(y).data()[0..3], [1.0, 1.0, 1.0]);
        assert_eq!(tape.value(y).data()[3..6], [-1.0, -1.0, -1.0]);
        let loss = tape.sum(y);
        tape.backward(loss);
        // Each channel bias receives N * T = 2 * 3 = 6 gradient units.
        assert_eq!(b.grad().data(), &[6.0, 6.0]);
        assert_eq!(x.grad().sum_all(), 12.0);
    }

    #[test]
    fn bias_rows_forward_and_grad() {
        let x = Param::new(Tensor::zeros(&[3, 2]), "x");
        let b = Param::new(Tensor::from_vec(vec![0.5, 1.5], &[2]).unwrap(), "b");
        let mut tape = Tape::new();
        let vx = tape.param(&x);
        let vb = tape.param(&b);
        let y = tape.add_bias_rows(vx, vb);
        assert_eq!(tape.value(y).data(), &[0.5, 1.5, 0.5, 1.5, 0.5, 1.5]);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(b.grad().data(), &[3.0, 3.0]);
    }
}
