//! A lock-free fixed-bucket log-scale histogram for latency recording.
//!
//! Extracted from `pit-serve`'s telemetry layer so every measurement
//! surface in the workspace — the daemon's per-shard wave timers, the
//! bench harness, the `pit-replay` load driver — shares one bucket
//! layout and one quantile convention, and snapshots taken on either
//! side of the wire can be merged or compared directly.
//!
//! ## Layout
//!
//! 252 fixed buckets (HDR-style) cover the full `u64` nanosecond range:
//! values 0–3 get their own bucket, then each power of two is split into
//! four sub-buckets (the two bits below the most significant bit select
//! within the octave). Bucket boundaries are exact integers, counts are
//! exact, and percentiles are derived from the cumulative bucket walk
//! with at most ~25% relative overestimate — the reported percentile is
//! the containing bucket's upper bound. Histograms never roll over:
//! quantiles describe the whole run, not the recent past.
//!
//! Recording is two relaxed `fetch_add`s — no locks, no allocation — so
//! a histogram can stay on unconditionally in a serving hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of fixed buckets: values 0–3 exactly, then four sub-buckets per
/// power of two up to `u64::MAX` (highest index 251).
pub const HIST_BUCKETS: usize = 252;

/// Bucket index for a nanosecond value. Values below 4 get their own
/// bucket; above that, the octave (position of the most significant bit)
/// selects a group of four sub-buckets and the two bits below the MSB
/// select within it.
pub fn bucket_index(ns: u64) -> usize {
    if ns < 4 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as usize;
    let sub = ((ns >> (msb - 2)) & 3) as usize;
    4 + (msb - 2) * 4 + sub
}

/// Smallest value that lands in bucket `idx` (exact integer boundary).
pub fn bucket_lo(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let oct = (idx - 4) / 4 + 2;
    let sub = ((idx - 4) % 4) as u64;
    (1u64 << oct) + (sub << (oct - 2))
}

/// Largest value that lands in bucket `idx`.
pub fn bucket_hi(idx: usize) -> u64 {
    if idx + 1 >= HIST_BUCKETS {
        return u64::MAX;
    }
    bucket_lo(idx + 1) - 1
}

/// A lock-free fixed-bucket log-scale latency histogram. Recording is two
/// relaxed `fetch_add`s; snapshots are a plain bucket copy.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum())
            .finish()
    }
}

impl Histogram {
    /// Records one observation (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copies the current bucket counts out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets, mergeable across
/// sources (shards, connections, runs) before computing global
/// percentiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with every bucket at zero.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HIST_BUCKETS],
            sum: 0,
        }
    }

    /// Adds another histogram's buckets into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The value at quantile `p` (0.0–1.0): the upper bound of the bucket
    /// containing the rank-`round((count-1)·p)` observation, matching the
    /// index convention of a sorted sample array.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total - 1) as f64 * p).round() as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > rank {
                return bucket_hi(idx);
            }
        }
        u64::MAX
    }

    /// Observations with value `<= bound` (the cumulative count behind a
    /// Prometheus `le` series; `bound` must be a bucket upper boundary for
    /// the count to be exact).
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        self.buckets[..=bucket_index(bound)].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        // Small values are exact.
        for v in 0..16u64 {
            let idx = bucket_index(v);
            assert!(
                bucket_lo(idx) <= v && v <= bucket_hi(idx),
                "v={v} idx={idx}"
            );
        }
        // Every bucket boundary maps back into its own bucket, buckets
        // tile the range without gaps or overlaps.
        for idx in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lo(idx)), idx);
            assert_eq!(bucket_index(bucket_hi(idx)), idx);
            assert_eq!(bucket_hi(idx) + 1, bucket_lo(idx + 1));
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_hi(HIST_BUCKETS - 1), u64::MAX);
        // Relative quantization error stays within a quarter of the value.
        for &v in &[5u64, 100, 1_000, 123_456, 7_890_123, u64::MAX / 3] {
            let hi = bucket_hi(bucket_index(v));
            assert!(hi - v <= v / 4 + 1, "v={v} hi={hi}");
        }
    }

    #[test]
    fn histogram_percentiles_track_recorded_values() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), 500_500);
        let p50 = snap.percentile(0.50);
        // The reported percentile is the containing bucket's upper bound:
        // never below the true value, at most ~25% above.
        assert!((500..=640).contains(&p50), "p50={p50}");
        let p99 = snap.percentile(0.99);
        assert!((990..=1280).contains(&p99), "p99={p99}");
        assert_eq!(snap.percentile(0.0), bucket_hi(bucket_index(1)));
        assert_eq!(snap.percentile(1.0), bucket_hi(bucket_index(1000)));
    }

    #[test]
    fn percentile_edges_handle_empty_and_single_sample() {
        let snap = HistogramSnapshot::empty();
        assert_eq!(snap.percentile(0.0), 0);
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.percentile(1.0), 0);
        assert_eq!(snap.count(), 0);
        let h = Histogram::default();
        h.record(777);
        let snap = h.snapshot();
        // One sample: every quantile lands on its bucket.
        let hi = bucket_hi(bucket_index(777));
        assert_eq!(snap.percentile(0.0), hi);
        assert_eq!(snap.percentile(0.999), hi);
        assert_eq!(snap.percentile(1.0), hi);
    }

    #[test]
    fn p999_separates_a_thousand_to_one_tail() {
        let h = Histogram::default();
        for _ in 0..9980 {
            h.record(1_000);
        }
        for _ in 0..20 {
            h.record(50_000_000);
        }
        let snap = h.snapshot();
        // p99 sits in the fast mass, p99.9 on the twenty slow outliers.
        assert!(snap.percentile(0.99) < 2_000);
        assert!(snap.percentile(0.999) >= 50_000_000);
    }

    #[test]
    fn histogram_snapshots_merge_across_sources() {
        let a = Histogram::default();
        let b = Histogram::default();
        for _ in 0..10 {
            a.record(10);
            b.record(1_000_000);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 20);
        assert_eq!(merged.sum(), 10 * 10 + 10 * 1_000_000);
        assert!(merged.percentile(0.95) >= 1_000_000);
        assert!(merged.percentile(0.05) < 20);
    }

    #[test]
    fn cumulative_le_matches_bound_walk() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 200, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_le(3), 3);
        assert_eq!(snap.cumulative_le(255), 6);
        assert_eq!(snap.cumulative_le((1 << 18) - 1), 7);
        assert_eq!(snap.cumulative_le(u64::MAX), 7);
    }
}
