//! Random weight initialisation schemes.

use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Uniform initialisation in `[-limit, limit]`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], limit: f32) -> Tensor {
    let dist = Uniform::new_inclusive(-limit, limit);
    let volume: usize = shape.iter().product();
    let data: Vec<f32> = (0..volume).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, shape).expect("volume matches by construction")
}

/// Kaiming / He uniform initialisation for layers followed by a ReLU.
///
/// `fan_in` is the number of input connections per output unit
/// (`C_in * kernel_size` for a convolution, `in_features` for a linear layer).
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(rng, shape, limit)
}

/// Xavier / Glorot uniform initialisation for linear output layers.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(rng, shape, limit)
}

/// Standard normal initialisation scaled by `std`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], std: f32) -> Tensor {
    // Box-Muller transform; avoids needing a separate statistics crate.
    let volume: usize = shape.iter().product();
    let mut data = Vec::with_capacity(volume);
    while data.len() < volume {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < volume {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, shape).expect("volume matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = uniform(&mut rng, &[100], 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn kaiming_limit_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let wide = kaiming_uniform(&mut rng, &[1000], 4);
        let narrow = kaiming_uniform(&mut rng, &[1000], 400);
        assert!(wide.max_all() > narrow.max_all());
    }

    #[test]
    fn xavier_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&mut rng, &[8, 4], 4, 8);
        assert_eq!(t.dims(), &[8, 4]);
    }

    #[test]
    fn normal_rough_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(&mut rng, &[10_000], 2.0);
        let mean = t.mean_all();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_odd_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = normal(&mut rng, &[7], 1.0);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(42), &[16], 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(42), &[16], 1.0);
        assert_eq!(a.data(), b.data());
    }
}
