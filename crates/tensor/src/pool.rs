//! A persistent batch-parallel worker pool for the numerical kernels.
//!
//! The convolution kernels in this crate are embarrassingly parallel over the
//! batch axis: every sample of a `[N, C, T]` activation writes a disjoint
//! slice of the output. This module provides the two execution shapes those
//! kernels need:
//!
//! * [`for_each_chunk`] — run a closure over disjoint `&mut` chunks of an
//!   output buffer (forward pass, input gradients);
//! * [`map_accumulate`] — run a closure per item into per-worker accumulator
//!   buffers and sum them (weight gradients, which reduce over the batch).
//!
//! Workers are **persistent**: they are spawned once (lazily, on the first
//! parallel call) and park on a condition variable between calls, so a
//! dispatch costs a wake-up (~microseconds) instead of a thread spawn
//! (~tens of microseconds). This matters for the small per-step dispatches of
//! the streaming inference engine, which would otherwise pay the spawn cost
//! on every timestep. The caller always participates in the work, so a batch
//! makes progress even when every worker is busy with another batch (which
//! also makes nested dispatch deadlock-free).
//!
//! Threading only kicks in when [`plan_threads`] decides the work amortises
//! the dispatch cost; on a single-core host (or for small tensors) everything
//! runs inline on the caller's thread.
//!
//! The worker count is capped by `std::thread::available_parallelism`, or by
//! the `PIT_NUM_THREADS` environment variable when set (`PIT_NUM_THREADS=1`
//! forces fully deterministic serial execution and never spawns a worker).

use parking_lot::Mutex;
use std::sync::OnceLock;

/// Minimum multiply-accumulate operations a thread must receive before waking
/// it is worth the dispatch cost. Lower than the old scoped-spawn threshold
/// (`1 << 20`): parked workers wake in microseconds, spawned ones started in
/// tens of microseconds.
const MIN_WORK_PER_THREAD: usize = 1 << 18;

/// Maximum worker count: `PIT_NUM_THREADS` if set, otherwise the detected
/// hardware parallelism (1 when detection fails).
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Some(n) = std::env::var("PIT_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Picks a worker count for `items` units of work costing `work_per_item`
/// multiply-accumulates each. Returns 1 (run inline) when the work would not
/// amortise waking the pool.
pub fn plan_threads(items: usize, work_per_item: usize) -> usize {
    let by_work = (items.saturating_mul(work_per_item) / MIN_WORK_PER_THREAD).max(1);
    max_threads().min(items).min(by_work).max(1)
}

/// The lifetime-erasing task dispatcher behind the persistent pool.
///
/// Safe Rust cannot hand a non-`'static` closure to a long-lived thread, so
/// this submodule erases the borrow behind a raw pointer and re-establishes
/// safety with a completion protocol: [`executor::run`] does not return until
/// every claimed task index has finished executing, so the erased borrow can
/// never outlive the closure it points to. This is the same construction
/// `rayon`/`crossbeam` use for scoped parallelism, reduced to the one shape
/// the kernels need (an indexed task set of known size).
mod executor {
    #![allow(unsafe_code)]

    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// One indexed task set: workers claim indices in `0..total` and run the
    /// erased closure on each.
    struct Batch {
        /// The caller's `&(dyn Fn(usize) + Sync)` with its lifetime erased to
        /// `'static`. Sound because [`run`] blocks until every task that can
        /// touch it has completed (`pending == 0`), so the borrow it was
        /// erased from is still live whenever this is dereferenced.
        task: &'static (dyn Fn(usize) + Sync),
        /// Next unclaimed index (may grow past `total`; claims beyond it are
        /// no-ops).
        next: AtomicUsize,
        total: usize,
        /// Tasks claimed or unclaimed but not yet finished; the batch is
        /// complete when this reaches zero.
        pending: AtomicUsize,
        /// First panic payload raised by a task, re-thrown by the caller.
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
        done: Mutex<bool>,
        done_cv: Condvar,
    }

    impl Batch {
        /// Claims and runs task indices until none remain. Panics inside a
        /// task are captured (not propagated) so worker threads survive and
        /// the completion protocol always terminates.
        fn drain(&self) {
            loop {
                let i = self.next.fetch_add(1, Ordering::AcqRel);
                if i >= self.total {
                    return;
                }
                // `pending` has not reached zero (this index has not
                // finished), so `run` is still blocked and the borrow behind
                // `task` is alive.
                let f = self.task;
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(payload);
                }
                if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
                    *done = true;
                    self.done_cv.notify_all();
                }
            }
        }

        fn exhausted(&self) -> bool {
            self.next.load(Ordering::Acquire) >= self.total
        }
    }

    struct Shared {
        /// Batches with unclaimed indices, oldest first.
        queue: Mutex<Vec<Arc<Batch>>>,
        work_cv: Condvar,
        /// Workers spawned so far (monotone; workers never exit).
        workers: AtomicUsize,
    }

    fn shared() -> &'static Shared {
        static SHARED: OnceLock<Shared> = OnceLock::new();
        SHARED.get_or_init(|| Shared {
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            workers: AtomicUsize::new(0),
        })
    }

    fn worker_loop() {
        let sh = shared();
        loop {
            let batch = {
                let mut q = sh.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    q.retain(|b| !b.exhausted());
                    if let Some(b) = q.first() {
                        break Arc::clone(b);
                    }
                    q = sh.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            batch.drain();
        }
    }

    /// Lazily tops the pool up to `wanted` parked workers (never more than
    /// [`super::max_threads`]` - 1`: the caller is always the extra thread).
    fn ensure_workers(wanted: usize) {
        let sh = shared();
        let cap = super::max_threads().saturating_sub(1);
        let wanted = wanted.min(cap);
        let mut cur = sh.workers.load(Ordering::Acquire);
        while cur < wanted {
            match sh
                .workers
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    let spawned = std::thread::Builder::new()
                        .name(format!("pit-pool-{cur}"))
                        .spawn(worker_loop);
                    if spawned.is_err() {
                        // Degrade gracefully: the caller drains every task
                        // itself, so correctness never depends on workers.
                        sh.workers.fetch_sub(1, Ordering::AcqRel);
                        return;
                    }
                    cur += 1;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Runs `f(i)` for every `i` in `0..total` using up to `threads` threads
    /// (the caller plus parked pool workers). Returns once every task has
    /// finished; re-raises the first panic any task produced.
    pub fn run(total: usize, threads: usize, f: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        if threads <= 1 || total == 1 {
            for i in 0..total {
                f(i);
            }
            return;
        }
        ensure_workers(threads - 1);
        // SAFETY: both sides of the transmute are a fat reference to the same
        // trait object; only the lifetime is erased. `run` does not return
        // until `pending == 0`, i.e. until no thread can dereference the
        // erased reference again, so it never outlives the real borrow.
        let task: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let batch = Arc::new(Batch {
            task,
            next: AtomicUsize::new(0),
            total,
            pending: AtomicUsize::new(total),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let sh = shared();
            let mut q = sh.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push(Arc::clone(&batch));
            sh.work_cv.notify_all();
        }
        // The caller participates: progress is guaranteed even when every
        // worker is busy elsewhere (or none could be spawned).
        batch.drain();
        // Block until the workers' claimed tasks have finished too — this is
        // the wait that makes the lifetime erasure behind `Batch::task` sound.
        {
            let mut done = batch.done.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = batch.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        let mut q = shared().queue.lock().unwrap_or_else(|e| e.into_inner());
        q.retain(|b| !Arc::ptr_eq(b, &batch));
        drop(q);
        let payload = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Splits `out` into consecutive chunks of `chunk_len` and runs
/// `f(chunk_index, chunk)` for each, using up to `threads` threads.
///
/// Chunks are disjoint, so workers never alias; a trailing chunk shorter than
/// `chunk_len` (when `out.len()` is not a multiple) is processed like any
/// other.
///
/// # Panics
///
/// Panics if `chunk_len` is zero and `out` is non-empty, or if `f` panics.
pub fn for_each_chunk(
    out: &mut [f32],
    chunk_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if out.is_empty() {
        return;
    }
    if threads <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Each chunk is wrapped in a Mutex so tasks can reach a `&mut` through a
    // shared reference; every index is claimed exactly once, so the locks are
    // uncontended (one acquisition per chunk).
    let chunks: Vec<Mutex<&mut [f32]>> = out.chunks_mut(chunk_len).map(Mutex::new).collect();
    executor::run(chunks.len(), threads, &|i| {
        let mut chunk = chunks[i].lock();
        f(i, &mut chunk);
    });
}

/// Runs `f(item_index, accumulator)` for every item in `0..items`, where each
/// task group owns a zero-initialised accumulator of `acc_len` floats that
/// `f` adds into; the per-group accumulators are summed into the returned
/// buffer.
///
/// Items are split into up to `threads` contiguous groups (one task each), so
/// the grouping — and therefore the floating-point summation order — depends
/// only on the thread count, not on scheduling. With `threads <= 1` a single
/// accumulator is reused serially, which is the fully deterministic path
/// (`PIT_NUM_THREADS=1`).
pub fn map_accumulate(
    items: usize,
    acc_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) -> Vec<f32> {
    if threads <= 1 || items <= 1 {
        let mut acc = vec![0.0f32; acc_len];
        for i in 0..items {
            f(i, &mut acc);
        }
        return acc;
    }
    let groups = threads.min(items);
    let accs: Vec<Mutex<Vec<f32>>> = (0..groups)
        .map(|_| Mutex::new(vec![0.0f32; acc_len]))
        .collect();
    executor::run(groups, groups, &|g| {
        let mut acc = accs[g].lock();
        let start = g * items / groups;
        let end = (g + 1) * items / groups;
        for i in start..end {
            f(i, &mut acc);
        }
    });
    let mut total = vec![0.0f32; acc_len];
    for acc in accs {
        for (t, v) in total.iter_mut().zip(acc.into_inner()) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_iteration_covers_every_chunk() {
        for threads in [1usize, 3] {
            let mut buf = vec![0.0f32; 10];
            for_each_chunk(&mut buf, 3, threads, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = i as f32 + 1.0;
                }
            });
            assert_eq!(
                buf,
                vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_buffer_is_a_no_op() {
        let mut buf: Vec<f32> = Vec::new();
        for_each_chunk(&mut buf, 4, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn accumulate_sums_every_item_once() {
        for threads in [1usize, 4] {
            let total = map_accumulate(7, 2, threads, |i, acc| {
                acc[0] += i as f32;
                acc[1] += 1.0;
            });
            assert_eq!(total, vec![21.0, 7.0], "threads={threads}");
        }
    }

    #[test]
    fn repeated_dispatch_reuses_the_pool() {
        // Exercises the parked-worker path many times in a row; the pool must
        // stay consistent across batches (this would hang or corrupt counts
        // if completion tracking leaked between batches).
        for round in 0..100usize {
            let mut buf = vec![0.0f32; 64];
            for_each_chunk(&mut buf, 4, 4, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = (round * 16 + i) as f32;
                }
            });
            for (i, chunk) in buf.chunks(4).enumerate() {
                assert!(chunk.iter().all(|&v| v == (round * 16 + i) as f32));
            }
        }
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let total = map_accumulate(16, 1, 4, |i, acc| {
                            acc[0] += i as f32;
                        });
                        assert_eq!(total, vec![120.0]);
                    }
                });
            }
        });
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            let mut buf = vec![0.0f32; 8];
            for_each_chunk(&mut buf, 1, 4, |i, _| {
                if i == 5 {
                    panic!("boom in task 5");
                }
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom in task 5"), "payload: {msg}");
    }

    #[test]
    fn plan_threads_stays_serial_for_small_work() {
        assert_eq!(plan_threads(8, 10), 1);
        assert_eq!(plan_threads(0, 1 << 30), 1);
        // Huge work is capped by the item count and the hardware.
        assert!(plan_threads(2, 1 << 24) <= 2);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
