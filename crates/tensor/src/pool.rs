//! A tiny batch-parallel worker pool for the numerical kernels.
//!
//! The convolution kernels in this crate are embarrassingly parallel over the
//! batch axis: every sample of a `[N, C, T]` activation writes a disjoint
//! slice of the output. This module provides the two execution shapes those
//! kernels need:
//!
//! * [`for_each_chunk`] — run a closure over disjoint `&mut` chunks of an
//!   output buffer (forward pass, input gradients);
//! * [`map_accumulate`] — run a closure per item into per-worker accumulator
//!   buffers and sum them (weight gradients, which reduce over the batch).
//!
//! Workers are scoped threads pulling indices from a shared
//! [`parking_lot::Mutex`]-guarded queue, so the vendored `parking_lot` stub is
//! all the synchronisation the pool needs. Threading only kicks in when
//! [`plan_threads`] decides the work amortises the spawn cost; on a
//! single-core host (or for small tensors) everything runs inline on the
//! caller's thread.
//!
//! The worker count is capped by `std::thread::available_parallelism`, or by
//! the `PIT_NUM_THREADS` environment variable when set (`PIT_NUM_THREADS=1`
//! forces fully deterministic serial execution).

use parking_lot::Mutex;
use std::sync::OnceLock;

/// Minimum multiply-accumulate operations a thread must receive before
/// spawning it is worth the ~tens-of-microseconds thread start cost.
const MIN_WORK_PER_THREAD: usize = 1 << 20;

/// Maximum worker count: `PIT_NUM_THREADS` if set, otherwise the detected
/// hardware parallelism (1 when detection fails).
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Some(n) = std::env::var("PIT_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Picks a worker count for `items` units of work costing `work_per_item`
/// multiply-accumulates each. Returns 1 (run inline) when the work would not
/// amortise thread spawning.
pub fn plan_threads(items: usize, work_per_item: usize) -> usize {
    let by_work = (items.saturating_mul(work_per_item) / MIN_WORK_PER_THREAD).max(1);
    max_threads().min(items).min(by_work).max(1)
}

/// Splits `out` into consecutive chunks of `chunk_len` and runs
/// `f(chunk_index, chunk)` for each, using up to `threads` workers.
///
/// Chunks are disjoint, so workers never alias; a trailing chunk shorter than
/// `chunk_len` (when `out.len()` is not a multiple) is processed like any
/// other.
///
/// # Panics
///
/// Panics if `chunk_len` is zero and `out` is non-empty.
pub fn for_each_chunk(
    out: &mut [f32],
    chunk_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if out.is_empty() {
        return;
    }
    if threads <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [f32])> = out.chunks_mut(chunk_len).enumerate().collect();
    let queue = Mutex::new(chunks.into_iter());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().next();
                match next {
                    Some((i, chunk)) => f(i, chunk),
                    None => break,
                }
            });
        }
    });
}

/// Runs `f(item_index, accumulator)` for every item in `0..items`, where each
/// worker owns a zero-initialised accumulator of `acc_len` floats that `f`
/// adds into; the per-worker accumulators are summed into the returned buffer.
///
/// With `threads <= 1` a single accumulator is reused serially, which is also
/// the fully deterministic path (`PIT_NUM_THREADS=1`).
pub fn map_accumulate(
    items: usize,
    acc_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) -> Vec<f32> {
    if threads <= 1 || items <= 1 {
        let mut acc = vec![0.0f32; acc_len];
        for i in 0..items {
            f(i, &mut acc);
        }
        return acc;
    }
    let queue = Mutex::new(0..items);
    let partials: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut acc = vec![0.0f32; acc_len];
                loop {
                    let next = queue.lock().next();
                    match next {
                        Some(i) => f(i, &mut acc),
                        None => break,
                    }
                }
                partials.lock().push(acc);
            });
        }
    });
    let mut total = vec![0.0f32; acc_len];
    for partial in partials.into_inner() {
        for (t, v) in total.iter_mut().zip(partial) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_iteration_covers_every_chunk() {
        for threads in [1usize, 3] {
            let mut buf = vec![0.0f32; 10];
            for_each_chunk(&mut buf, 3, threads, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = i as f32 + 1.0;
                }
            });
            assert_eq!(
                buf,
                vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_buffer_is_a_no_op() {
        let mut buf: Vec<f32> = Vec::new();
        for_each_chunk(&mut buf, 4, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn accumulate_sums_every_item_once() {
        for threads in [1usize, 4] {
            let total = map_accumulate(7, 2, threads, |i, acc| {
                acc[0] += i as f32;
                acc[1] += 1.0;
            });
            assert_eq!(total, vec![21.0, 7.0], "threads={threads}");
        }
    }

    #[test]
    fn plan_threads_stays_serial_for_small_work() {
        assert_eq!(plan_threads(8, 10), 1);
        assert_eq!(plan_threads(0, 1 << 30), 1);
        // Huge work is capped by the item count and the hardware.
        assert!(plan_threads(2, 1 << 24) <= 2);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
