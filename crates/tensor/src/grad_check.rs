//! Finite-difference gradient checking.
//!
//! Used across the workspace's test suites to validate that every autograd
//! op and every composite layer produces correct gradients.

use crate::param::Param;
use crate::tensor::Tensor;

/// Computes the numerical gradient of `forward` with respect to `param` by
/// central finite differences with step `eps`.
///
/// `forward` must evaluate the scalar loss using the *current* value of the
/// parameter (it is called repeatedly while the parameter is perturbed; the
/// original value is restored afterwards).
pub fn finite_diff_grad(param: &Param, forward: &dyn Fn() -> f32, eps: f32) -> Tensor {
    let original = param.value();
    let n = original.len();
    let mut grad = vec![0.0f32; n];
    for i in 0..n {
        let mut plus = original.clone();
        plus.data_mut()[i] += eps;
        param.set_value(plus);
        let f_plus = forward();

        let mut minus = original.clone();
        minus.data_mut()[i] -= eps;
        param.set_value(minus);
        let f_minus = forward();

        grad[i] = (f_plus - f_minus) / (2.0 * eps);
    }
    param.set_value(original.clone());
    Tensor::from_vec(grad, original.dims()).expect("finite diff grad shape")
}

/// Compares an analytic gradient against finite differences and returns the
/// largest relative error across elements.
///
/// The relative error of element `i` is
/// `|analytic_i − numeric_i| / max(1, |analytic_i|, |numeric_i|)`, which
/// behaves like an absolute error for small gradients and like a relative
/// error for large ones.
pub fn check_param_grad(
    param: &Param,
    analytic: &Tensor,
    forward: &dyn Fn() -> f32,
    eps: f32,
) -> f32 {
    let numeric = finite_diff_grad(param, forward, eps);
    let mut worst = 0.0f32;
    for (&a, &n) in analytic.data().iter().zip(numeric.data().iter()) {
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        worst = worst.max((a - n).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn finite_diff_matches_analytic_for_quadratic() {
        // f(w) = sum(w^2): df/dw = 2w.
        let w = Param::new(Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap(), "w");
        let forward = {
            let w = w.clone();
            move || {
                let mut tape = Tape::new();
                let x = tape.param(&w);
                let sq = tape.square(x);
                let s = tape.sum(sq);
                tape.value(s).item()
            }
        };
        let numeric = finite_diff_grad(&w, &forward, 1e-3);
        let expected = w.value().mul_scalar(2.0);
        assert!(numeric.approx_eq(&expected, 1e-2));
    }

    #[test]
    fn check_param_grad_flags_wrong_gradient() {
        let w = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap(), "w");
        let forward = {
            let w = w.clone();
            move || {
                let mut tape = Tape::new();
                let x = tape.param(&w);
                let sq = tape.square(x);
                let s = tape.sum(sq);
                tape.value(s).item()
            }
        };
        let wrong = Tensor::from_vec(vec![5.0], &[1]).unwrap();
        let err = check_param_grad(&w, &wrong, &forward, 1e-3);
        assert!(err > 0.5);
        let right = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        let err = check_param_grad(&w, &right, &forward, 1e-3);
        assert!(err < 1e-2);
    }

    #[test]
    fn parameter_value_restored_after_check() {
        let w = Param::new(Tensor::from_vec(vec![0.7, -0.3], &[2]).unwrap(), "w");
        let before = w.value();
        let forward = {
            let w = w.clone();
            move || w.value().sum_all()
        };
        let _ = finite_diff_grad(&w, &forward, 1e-3);
        assert_eq!(w.value().data(), before.data());
    }
}
