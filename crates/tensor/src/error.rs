//! Error type shared by every fallible operation in the tensor crate.

use std::fmt;

/// Convenient alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors raised by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data length.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// A tensor did not have the rank (number of dimensions) required by an operation.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the provided tensor.
        actual: usize,
    },
    /// A parameter of an operation was invalid (zero kernel size, zero stride, ...).
    InvalidArgument {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument { op, message } => {
                write!(f, "{op}: {message}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "data length 3 does not match shape volume 4");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "add",
            lhs: vec![2, 2],
            rhs: vec![3],
        };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 2]"));
    }

    #[test]
    fn display_rank_mismatch() {
        let e = TensorError::RankMismatch {
            op: "conv1d",
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected rank 3"));
    }

    #[test]
    fn display_invalid_argument() {
        let e = TensorError::InvalidArgument {
            op: "pool",
            message: "kernel must be > 0".into(),
        };
        assert!(e.to_string().contains("kernel must be > 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
