//! A hand-rolled JSON value, writer and parser.
//!
//! The vendored `serde` stub's derives are no-ops (see ROADMAP), so anything
//! in the workspace that needs machine-readable persistence serialises
//! through this minimal JSON implementation instead: the `pit-bench`
//! baselines (`BENCH_*.json`) and the `pit-models` architecture descriptors
//! both round-trip through it. It lives in `pit-tensor` — the crate every
//! other member depends on — and covers the full JSON data model: objects,
//! arrays, strings with escapes, numbers, booleans, null. That is more than
//! any one schema needs, so the committed files survive hand-editing and
//! reformatting.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The node as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline, suitable for committing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not needed by our own writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary payloads
// ---------------------------------------------------------------------------
//
// JSON has no byte-array type, so weight payloads (the `pit-arch/2` model
// artifacts) travel as base64 strings of little-endian bytes. The codec is
// hand-rolled for the same reason the JSON above is: the vendored serde stub
// cannot serialise, and no base64 crate is reachable from the build
// environment.

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard (RFC 4648, padded) base64.
pub fn encode_base64(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(BASE64_ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(triple >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(triple >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            BASE64_ALPHABET[triple as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn base64_value(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes standard padded base64.
///
/// # Errors
///
/// Returns a message on characters outside the alphabet, a length that is
/// not a multiple of four, or misplaced padding.
pub fn decode_base64(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "base64 length {} is not a multiple of four",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 0 && (!last || pad > 2 || quad[..4 - pad].contains(&b'=')) {
            return Err(format!("misplaced base64 padding near byte {}", i * 4));
        }
        let mut triple = 0u32;
        for (j, &c) in quad.iter().enumerate() {
            let v = if c == b'=' {
                0
            } else {
                base64_value(c)
                    .ok_or_else(|| format!("invalid base64 character at byte {}", i * 4 + j))?
            };
            triple |= v << (18 - 6 * j);
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

/// Encodes `f32` values as base64 of their little-endian bytes — the weight
/// payload encoding of the `pit-arch/2` artifact format.
pub fn encode_f32s(values: &[f32]) -> String {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    encode_base64(&bytes)
}

/// Decodes a base64 string of little-endian `f32` bytes.
///
/// # Errors
///
/// Returns a message on invalid base64 or a byte count that is not a
/// multiple of four.
pub fn decode_f32s(text: &str) -> Result<Vec<f32>, String> {
    let bytes = decode_base64(text)?;
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "f32 payload holds {} bytes, not a multiple of four",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Encodes `i8` values (int8 weight payloads) as base64, one byte each.
pub fn encode_i8s(values: &[i8]) -> String {
    let bytes: Vec<u8> = values.iter().map(|&v| v as u8).collect();
    encode_base64(&bytes)
}

/// Decodes a base64 string of `i8` bytes.
///
/// # Errors
///
/// Returns a message on invalid base64.
pub fn decode_i8s(text: &str) -> Result<Vec<i8>, String> {
    Ok(decode_base64(text)?.into_iter().map(|b| b as i8).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_bench_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("pit-bench/1".into())),
            (
                "records".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("op".into(), Json::Str("conv1d_forward/fast".into())),
                    ("ns_per_iter".into(), Json::Num(1234.5)),
                    ("count".into(), Json::Num(42.0)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("records").unwrap().as_array().unwrap()[0]
                .get("ns_per_iter")
                .unwrap()
                .as_f64(),
            Some(1234.5)
        );
    }

    #[test]
    fn parses_hand_written_json() {
        let text = r#"
            { "a": [1, 2.5, -3e2],
              "b": {"nested": true, "x": null},
              "s": "line\nbreak \"quoted\" A → unicode" }
        "#;
        let doc = Json::parse(text).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(doc.get("b").unwrap().get("nested"), Some(&Json::Bool(true)));
        assert_eq!(
            doc.get("s").unwrap().as_str(),
            Some("line\nbreak \"quoted\" A → unicode")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{\"k\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn escapes_special_characters_when_writing() {
        let doc = Json::Str("tab\there \"and\" \\ done".into());
        let text = doc.render();
        assert_eq!(text, "\"tab\\there \\\"and\\\" \\\\ done\"\n");
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(256.0).render(), "256\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let doc = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(doc.get("k").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn base64_matches_known_vectors() {
        // RFC 4648 test vectors cover every padding case.
        for (plain, encoded) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode_base64(plain.as_bytes()), encoded);
            assert_eq!(decode_base64(encoded).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn base64_roundtrips_all_byte_values() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode_base64(&encode_base64(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn base64_rejects_malformed_input() {
        assert!(decode_base64("abc").is_err()); // not a multiple of 4
        assert!(decode_base64("ab!d").is_err()); // bad character
        assert!(decode_base64("a==b").is_err()); // padding inside a quad
        assert!(decode_base64("Zg==Zg==").is_err()); // padding mid-stream
        assert!(decode_base64("Z===").is_err()); // more than two pads
    }

    #[test]
    fn f32_payload_roundtrips_exactly() {
        let values = [0.0f32, -1.5, 3.25e-7, f32::MAX, f32::MIN_POSITIVE, -0.0];
        let text = encode_f32s(&values);
        let back = decode_f32s(&text).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_payload_rejects_wrong_byte_counts() {
        // Five bytes survive base64 but are not a whole number of f32s.
        let text = encode_base64(&[1, 2, 3, 4, 5]);
        let err = decode_f32s(&text).unwrap_err();
        assert!(err.contains("multiple of four"), "{err}");
    }

    #[test]
    fn i8_payload_roundtrips_the_full_range() {
        let values: Vec<i8> = (-128..=127).collect();
        assert_eq!(decode_i8s(&encode_i8s(&values)).unwrap(), values);
    }
}
