//! Shape bookkeeping: dimension lists, volumes and row-major strides.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Shapes are stored in row-major (C) order; the last dimension is the
/// fastest varying. The empty shape `[]` denotes a scalar with one element.
///
/// # Example
///
/// ```
/// use pit_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Returns the scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// Dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the index rank does not
    /// match or any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::InvalidArgument {
                op: "offset",
                message: format!(
                    "index rank {} does not match shape rank {}",
                    index.len(),
                    self.dims.len()
                ),
            });
        }
        let mut off = 0usize;
        for (i, (&idx, &dim)) in index.iter().zip(self.dims.iter()).enumerate() {
            if idx >= dim {
                return Err(TensorError::InvalidArgument {
                    op: "offset",
                    message: format!("index {idx} out of bounds for dimension {i} of size {dim}"),
                });
            }
            off = off * dim + idx;
        }
        Ok(off)
    }

    /// Returns `true` when both shapes have identical dimension lists.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[5]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offset_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b = Shape::from(&[1usize, 2][..]);
        assert!(a.same_as(&b));
    }

    #[test]
    fn zero_dim_volume() {
        let s = Shape::new(&[2, 0, 3]);
        assert_eq!(s.volume(), 0);
    }
}
