//! Trainable parameters that persist across training steps.

use crate::tensor::Tensor;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A trainable tensor shared between the model that owns it and the autograd
/// tape / optimizer that update it.
///
/// `Param` is a cheaply clonable handle (`Arc` + mutex) to a value tensor and
/// its accumulated gradient. Lifting a `Param` onto a [`crate::Tape`] with
/// [`crate::Tape::param`] records a leaf node; [`crate::Tape::backward`]
/// accumulates gradients back into the `Param`, where an optimizer can read
/// and apply them.
///
/// # Example
///
/// ```
/// use pit_tensor::{Param, Tensor};
/// let p = Param::new(Tensor::zeros(&[3]), "bias");
/// p.accumulate_grad(&Tensor::ones(&[3]));
/// assert_eq!(p.grad().data(), &[1.0, 1.0, 1.0]);
/// p.zero_grad();
/// assert_eq!(p.grad().sum_all(), 0.0);
/// ```
#[derive(Clone)]
pub struct Param {
    inner: Arc<Mutex<ParamInner>>,
    name: Arc<String>,
}

struct ParamInner {
    value: Tensor,
    grad: Tensor,
    /// When `false` the parameter is skipped by optimizers (frozen).
    trainable: bool,
}

impl Param {
    /// Creates a new trainable parameter from an initial value.
    pub fn new(value: Tensor, name: impl Into<String>) -> Self {
        let grad = value.zeros_like();
        Self {
            inner: Arc::new(Mutex::new(ParamInner {
                value,
                grad,
                trainable: true,
            })),
            name: Arc::new(name.into()),
        }
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A snapshot (clone) of the current value.
    pub fn value(&self) -> Tensor {
        self.inner.lock().value.clone()
    }

    /// A snapshot (clone) of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.lock().grad.clone()
    }

    /// The shape of the parameter value.
    pub fn dims(&self) -> Vec<usize> {
        self.inner.lock().value.dims().to_vec()
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.inner.lock().value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overwrites the parameter value.
    ///
    /// # Panics
    ///
    /// Panics if the new value has a different shape from the current one.
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.lock();
        assert!(
            inner.value.shape().same_as(value.shape()),
            "set_value: shape mismatch for parameter '{}': {} vs {}",
            self.name,
            inner.value.shape(),
            value.shape()
        );
        inner.value = value;
    }

    /// Applies `f` to the parameter value in place.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        let mut inner = self.inner.lock();
        f(&mut inner.value);
    }

    /// Adds `grad` to the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the value shape.
    pub fn accumulate_grad(&self, grad: &Tensor) {
        let mut inner = self.inner.lock();
        inner
            .grad
            .add_assign(grad)
            .unwrap_or_else(|e| panic!("accumulate_grad on '{}': {e}", self.name));
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        self.inner.lock().grad.fill(0.0);
    }

    /// Returns `true` when the parameter should be updated by optimizers.
    pub fn trainable(&self) -> bool {
        self.inner.lock().trainable
    }

    /// Freezes or unfreezes the parameter (frozen parameters are skipped by
    /// optimizers but still participate in the forward pass).
    pub fn set_trainable(&self, trainable: bool) {
        self.inner.lock().trainable = trainable;
    }

    /// Applies an SGD-style in-place update `value -= lr * (grad + wd * value)`.
    pub fn sgd_step(&self, lr: f32, weight_decay: f32) {
        let mut inner = self.inner.lock();
        if !inner.trainable {
            return;
        }
        let ParamInner { value, grad, .. } = &mut *inner;
        for (v, g) in value.data_mut().iter_mut().zip(grad.data().iter()) {
            *v -= lr * (g + weight_decay * *v);
        }
    }

    /// Runs `f` with read access to value and gradient without cloning.
    pub fn with_value_and_grad<R>(&self, f: impl FnOnce(&Tensor, &Tensor) -> R) -> R {
        let inner = self.inner.lock();
        f(&inner.value, &inner.grad)
    }

    /// Runs `f` with mutable access to the value and read access to the gradient.
    pub fn with_value_mut_and_grad<R>(&self, f: impl FnOnce(&mut Tensor, &Tensor) -> R) -> R {
        let mut inner = self.inner.lock();
        let ParamInner { value, grad, .. } = &mut *inner;
        f(value, grad)
    }

    /// Returns `true` if two handles refer to the same underlying parameter.
    pub fn same_param(&self, other: &Param) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Param")
            .field("name", &self.name)
            .field("shape", &inner.value.dims())
            .field("trainable", &inner.trainable)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[4]), "w");
        assert_eq!(p.grad().sum_all(), 0.0);
        assert_eq!(p.value().sum_all(), 4.0);
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let p = Param::new(Tensor::zeros(&[2]), "w");
        p.accumulate_grad(&Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.accumulate_grad(&Tensor::from_vec(vec![0.5, 0.5], &[2]).unwrap());
        assert_eq!(p.grad().data(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn sgd_step_updates_value() {
        let p = Param::new(Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap(), "w");
        p.accumulate_grad(&Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap());
        p.sgd_step(0.1, 0.0);
        assert_eq!(p.value().data(), &[0.9, 1.1]);
    }

    #[test]
    fn frozen_param_skips_update() {
        let p = Param::new(Tensor::ones(&[1]), "w");
        p.accumulate_grad(&Tensor::ones(&[1]));
        p.set_trainable(false);
        p.sgd_step(1.0, 0.0);
        assert_eq!(p.value().data(), &[1.0]);
        assert!(!p.trainable());
    }

    #[test]
    fn clone_shares_storage() {
        let p = Param::new(Tensor::zeros(&[1]), "w");
        let q = p.clone();
        q.set_value(Tensor::from_vec(vec![3.0], &[1]).unwrap());
        assert_eq!(p.value().data(), &[3.0]);
        assert!(p.same_param(&q));
        let r = Param::new(Tensor::zeros(&[1]), "w");
        assert!(!p.same_param(&r));
    }

    #[test]
    #[should_panic]
    fn set_value_shape_mismatch_panics() {
        let p = Param::new(Tensor::zeros(&[2]), "w");
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn param_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Param>();
    }
}
