//! Dense, row-major `f32` tensors and the raw numerical kernels used by the
//! autograd layer (element-wise arithmetic, matrix multiplication, causal
//! dilated 1-D convolution, pooling and reductions).

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense n-dimensional array of `f32` values stored in row-major order.
///
/// `Tensor` is a plain value type: it has no gradient tracking of its own.
/// Differentiable computations are built on top of it by
/// [`crate::Tape`]/[`crate::Var`].
///
/// # Example
///
/// ```
/// use pit_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = Tensor::ones(&[2, 2]);
/// let c = a.add(&b).unwrap();
/// assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the volume of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let shape = Shape::new(shape);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        let data = vec![0.0; shape.volume()];
        Self { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        let data = vec![value; shape.volume()];
        Self { shape, data }
    }

    /// Creates a rank-0 (scalar) tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a rank-1 tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        let data = (0..n).map(|i| i as f32).collect();
        Self {
            shape: Shape::new(&[n]),
            data,
        }
    }

    /// Creates a tensor with the same shape as `self`, filled with zeros.
    pub fn zeros_like(&self) -> Self {
        Self {
            shape: self.shape.clone(),
            data: vec![0.0; self.data.len()],
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the single element of a scalar (or one-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not contain exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a single-element tensor, got {}",
            self.shape
        );
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy of the tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let new_shape = Shape::new(shape);
        if new_shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: new_shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Self {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Element-wise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f(self[i], other[i])` element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Multiplies every element by `s`.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Element-wise negation.
    pub fn neg(&self) -> Self {
        self.map(|x| -x)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// In-place accumulation: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scaling: `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        for a in self.data.iter_mut() {
            *a = value;
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element along the last dimension, for every
    /// leading position. Returns a tensor whose shape is `dims[..rank-1]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank 0.
    pub fn argmax_last_dim(&self) -> Vec<usize> {
        let rank = self.shape.rank();
        assert!(rank >= 1, "argmax_last_dim requires rank >= 1");
        let last = self.shape.dim(rank - 1);
        let rows = self.data.len() / last.max(1);
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * last..(r + 1) * last];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        out
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication of two rank-2 tensors: `[M, K] x [K, N] -> [M, N]`.
    ///
    /// # Errors
    ///
    /// Returns an error if either operand is not rank 2 or if the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        if other.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: other.shape.rank(),
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm(m, k, n, &self.data, &other.data, &mut out);
        Ok(Self {
            shape: Shape::new(&[m, n]),
            data: out,
        })
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2.
    pub fn transpose2(&self) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose2",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Self {
            shape: Shape::new(&[n, m]),
            data: out,
        })
    }

    // ------------------------------------------------------------------
    // Convolution / pooling kernels (raw, non-autograd)
    // ------------------------------------------------------------------

    /// Validates the operand shapes of a causal convolution and returns its
    /// geometry.
    fn conv1d_check(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        mask: Option<&Tensor>,
        dilation: usize,
    ) -> Result<crate::kernels::ConvShape> {
        if self.shape.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv1d_causal",
                expected: 3,
                actual: self.shape.rank(),
            });
        }
        if weight.shape.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv1d_causal",
                expected: 3,
                actual: weight.shape.rank(),
            });
        }
        if dilation == 0 {
            return Err(TensorError::InvalidArgument {
                op: "conv1d_causal",
                message: "dilation must be >= 1".into(),
            });
        }
        let (n, c_in, t) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
        let (c_out, c_in_w, k) = (
            weight.shape.dim(0),
            weight.shape.dim(1),
            weight.shape.dim(2),
        );
        if c_in != c_in_w {
            return Err(TensorError::ShapeMismatch {
                op: "conv1d_causal",
                lhs: self.dims().to_vec(),
                rhs: weight.dims().to_vec(),
            });
        }
        if let Some(b) = bias {
            if b.dims() != [c_out] {
                return Err(TensorError::ShapeMismatch {
                    op: "conv1d_causal(bias)",
                    lhs: vec![c_out],
                    rhs: b.dims().to_vec(),
                });
            }
        }
        if let Some(m) = mask {
            if m.dims() != [k] {
                return Err(TensorError::ShapeMismatch {
                    op: "conv1d_causal(mask)",
                    lhs: vec![k],
                    rhs: m.dims().to_vec(),
                });
            }
        }
        Ok(crate::kernels::ConvShape {
            n,
            c_in,
            t,
            c_out,
            k,
            dilation,
        })
    }

    /// Causal dilated 1-D convolution.
    ///
    /// * `self`: input of shape `[N, C_in, T]`
    /// * `weight`: filters of shape `[C_out, C_in, K]`
    /// * `bias`: optional bias of shape `[C_out]`
    /// * `dilation`: step between taps along the time axis (must be >= 1)
    ///
    /// Output `[N, C_out, T]` with `y[n, co, t] = Σ_ci Σ_k x[n, ci, t − d·k] · w[co, ci, k]`,
    /// where out-of-range (negative-time) samples contribute zero. Tap index
    /// `k = 0` is the most recent sample, matching Eq. (1) of the PIT paper.
    ///
    /// Runs through the im2col/GEMM kernels of this crate, batch-parallel
    /// over `N` for large tensors.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or channel mismatches or when `dilation == 0`.
    pub fn conv1d_causal(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        dilation: usize,
    ) -> Result<Self> {
        let s = self.conv1d_check(weight, bias, None, dilation)?;
        let mut out = vec![0.0f32; s.n * s.c_out * s.t];
        crate::kernels::conv1d_forward(
            &self.data,
            &weight.data,
            bias.map(|b| b.data.as_slice()),
            None,
            &s,
            &mut out,
        );
        Ok(Self {
            shape: Shape::new(&[s.n, s.c_out, s.t]),
            data: out,
        })
    }

    /// Causal dilated 1-D convolution with a per-tap time mask fused into the
    /// weight gather: computes `conv(x, W ⊙ M)` without materialising
    /// `W ⊙ M`, and skips fully masked taps entirely.
    ///
    /// * `mask`: shape `[K]`, one multiplier per filter tap (the PIT mask
    ///   `M` of Eq. 3–5).
    ///
    /// # Errors
    ///
    /// Returns an error on rank, channel, bias or mask-shape mismatches or
    /// when `dilation == 0`.
    pub fn conv1d_causal_masked(
        &self,
        weight: &Tensor,
        mask: &Tensor,
        bias: Option<&Tensor>,
        dilation: usize,
    ) -> Result<Self> {
        let s = self.conv1d_check(weight, bias, Some(mask), dilation)?;
        let mut out = vec![0.0f32; s.n * s.c_out * s.t];
        crate::kernels::conv1d_forward(
            &self.data,
            &weight.data,
            bias.map(|b| b.data.as_slice()),
            Some(&mask.data),
            &s,
            &mut out,
        );
        Ok(Self {
            shape: Shape::new(&[s.n, s.c_out, s.t]),
            data: out,
        })
    }

    /// Gradient of [`Tensor::conv1d_causal`] with respect to the input.
    ///
    /// `grad_out` has shape `[N, C_out, T]`; the result has the input's shape
    /// `[N, C_in, T]`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank mismatches or when `dilation == 0`.
    pub fn conv1d_causal_grad_input(
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &[usize],
        dilation: usize,
    ) -> Result<Self> {
        Self::conv1d_grad_input_impl(grad_out, weight, None, input_shape, dilation)
    }

    /// Gradient of [`Tensor::conv1d_causal_masked`] with respect to the
    /// input: like [`Tensor::conv1d_causal_grad_input`] but with the `[K]`
    /// time mask fused into the weight gather.
    ///
    /// # Errors
    ///
    /// Returns an error on rank or mask-shape mismatches or when
    /// `dilation == 0`.
    pub fn conv1d_causal_masked_grad_input(
        grad_out: &Tensor,
        weight: &Tensor,
        mask: &Tensor,
        input_shape: &[usize],
        dilation: usize,
    ) -> Result<Self> {
        Self::conv1d_grad_input_impl(grad_out, weight, Some(mask), input_shape, dilation)
    }

    fn conv1d_grad_input_impl(
        grad_out: &Tensor,
        weight: &Tensor,
        mask: Option<&Tensor>,
        input_shape: &[usize],
        dilation: usize,
    ) -> Result<Self> {
        if grad_out.shape.rank() != 3 || weight.shape.rank() != 3 || input_shape.len() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv1d_causal_grad_input",
                expected: 3,
                actual: grad_out.shape.rank(),
            });
        }
        if dilation == 0 {
            return Err(TensorError::InvalidArgument {
                op: "conv1d_causal_grad_input",
                message: "dilation must be >= 1".into(),
            });
        }
        let (n, c_out, t) = (
            grad_out.shape.dim(0),
            grad_out.shape.dim(1),
            grad_out.shape.dim(2),
        );
        let (c_out_w, c_in, k) = (
            weight.shape.dim(0),
            weight.shape.dim(1),
            weight.shape.dim(2),
        );
        if c_out != c_out_w || input_shape[0] != n || input_shape[2] != t || input_shape[1] != c_in
        {
            return Err(TensorError::ShapeMismatch {
                op: "conv1d_causal_grad_input",
                lhs: grad_out.dims().to_vec(),
                rhs: weight.dims().to_vec(),
            });
        }
        if let Some(m) = mask {
            if m.dims() != [k] {
                return Err(TensorError::ShapeMismatch {
                    op: "conv1d_causal_grad_input(mask)",
                    lhs: vec![k],
                    rhs: m.dims().to_vec(),
                });
            }
        }
        let s = crate::kernels::ConvShape {
            n,
            c_in,
            t,
            c_out,
            k,
            dilation,
        };
        let mut out = vec![0.0f32; n * c_in * t];
        crate::kernels::conv1d_grad_input(
            &grad_out.data,
            &weight.data,
            mask.map(|m| m.data.as_slice()),
            &s,
            &mut out,
        );
        Ok(Self {
            shape: Shape::new(&[n, c_in, t]),
            data: out,
        })
    }

    /// Gradient of [`Tensor::conv1d_causal`] with respect to the weights.
    ///
    /// `input` has shape `[N, C_in, T]`, `grad_out` has shape `[N, C_out, T]`;
    /// the result has the weight shape `[C_out, C_in, K]`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank mismatches or when `dilation == 0`.
    pub fn conv1d_causal_grad_weight(
        input: &Tensor,
        grad_out: &Tensor,
        kernel_size: usize,
        dilation: usize,
    ) -> Result<Self> {
        if grad_out.shape.rank() != 3 || input.shape.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv1d_causal_grad_weight",
                expected: 3,
                actual: input.shape.rank(),
            });
        }
        if dilation == 0 {
            return Err(TensorError::InvalidArgument {
                op: "conv1d_causal_grad_weight",
                message: "dilation must be >= 1".into(),
            });
        }
        let (n, c_in, t) = (input.shape.dim(0), input.shape.dim(1), input.shape.dim(2));
        let (n2, c_out, t2) = (
            grad_out.shape.dim(0),
            grad_out.shape.dim(1),
            grad_out.shape.dim(2),
        );
        if n != n2 || t != t2 {
            return Err(TensorError::ShapeMismatch {
                op: "conv1d_causal_grad_weight",
                lhs: input.dims().to_vec(),
                rhs: grad_out.dims().to_vec(),
            });
        }
        let k = kernel_size;
        let s = crate::kernels::ConvShape {
            n,
            c_in,
            t,
            c_out,
            k,
            dilation,
        };
        let mut out = vec![0.0f32; c_out * c_in * k];
        crate::kernels::conv1d_grad_weight(&input.data, &grad_out.data, &s, &mut out);
        Ok(Self {
            shape: Shape::new(&[c_out, c_in, k]),
            data: out,
        })
    }

    /// The seed's nested-loop causal convolution, kept as the reference
    /// oracle for the im2col/GEMM kernels (tests and the `pit-bench`
    /// before/after suite).
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::conv1d_causal`].
    #[cfg(any(test, feature = "reference"))]
    pub fn conv1d_causal_naive(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        dilation: usize,
    ) -> Result<Self> {
        let s = self.conv1d_check(weight, bias, None, dilation)?;
        let mut out = vec![0.0f32; s.n * s.c_out * s.t];
        crate::kernels::naive_conv1d_forward(
            &self.data,
            &weight.data,
            bias.map(|b| b.data.as_slice()),
            &s,
            &mut out,
        );
        Ok(Self {
            shape: Shape::new(&[s.n, s.c_out, s.t]),
            data: out,
        })
    }

    /// Reference-oracle counterpart of [`Tensor::conv1d_causal_grad_input`]
    /// (the seed's nested-loop implementation).
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::conv1d_causal_grad_input`].
    #[cfg(any(test, feature = "reference"))]
    pub fn conv1d_causal_grad_input_naive(
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &[usize],
        dilation: usize,
    ) -> Result<Self> {
        if grad_out.shape.rank() != 3 || weight.shape.rank() != 3 || input_shape.len() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv1d_causal_grad_input_naive",
                expected: 3,
                actual: grad_out.shape.rank(),
            });
        }
        let s = crate::kernels::ConvShape {
            n: input_shape[0],
            c_in: input_shape[1],
            t: input_shape[2],
            c_out: weight.shape.dim(0),
            k: weight.shape.dim(2),
            dilation,
        };
        let mut out = vec![0.0f32; s.n * s.c_in * s.t];
        crate::kernels::naive_conv1d_grad_input(&grad_out.data, &weight.data, &s, &mut out);
        Ok(Self {
            shape: Shape::new(&[s.n, s.c_in, s.t]),
            data: out,
        })
    }

    /// Reference-oracle counterpart of [`Tensor::conv1d_causal_grad_weight`]
    /// (the seed's nested-loop implementation).
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::conv1d_causal_grad_weight`].
    #[cfg(any(test, feature = "reference"))]
    pub fn conv1d_causal_grad_weight_naive(
        input: &Tensor,
        grad_out: &Tensor,
        kernel_size: usize,
        dilation: usize,
    ) -> Result<Self> {
        if grad_out.shape.rank() != 3 || input.shape.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv1d_causal_grad_weight_naive",
                expected: 3,
                actual: input.shape.rank(),
            });
        }
        let s = crate::kernels::ConvShape {
            n: input.shape.dim(0),
            c_in: input.shape.dim(1),
            t: input.shape.dim(2),
            c_out: grad_out.shape.dim(1),
            k: kernel_size,
            dilation,
        };
        let mut out = vec![0.0f32; s.c_out * s.c_in * s.k];
        crate::kernels::naive_conv1d_grad_weight(&input.data, &grad_out.data, &s, &mut out);
        Ok(Self {
            shape: Shape::new(&[s.c_out, s.c_in, s.k]),
            data: out,
        })
    }

    /// Average pooling over the time axis of a `[N, C, T]` tensor.
    ///
    /// The output length is `floor((T - kernel) / stride) + 1`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank mismatch, zero kernel/stride, or a kernel
    /// larger than the sequence.
    pub fn avg_pool1d(&self, kernel: usize, stride: usize) -> Result<Self> {
        if self.shape.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "avg_pool1d",
                expected: 3,
                actual: self.shape.rank(),
            });
        }
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "avg_pool1d",
                message: "kernel and stride must be >= 1".into(),
            });
        }
        let (n, c, t) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
        if kernel > t {
            return Err(TensorError::InvalidArgument {
                op: "avg_pool1d",
                message: format!("kernel {kernel} larger than sequence length {t}"),
            });
        }
        let t_out = (t - kernel) / stride + 1;
        let mut out = vec![0.0f32; n * c * t_out];
        let inv = 1.0 / kernel as f32;
        for bn in 0..n {
            for cc in 0..c {
                let in_base = (bn * c + cc) * t;
                let out_base = (bn * c + cc) * t_out;
                for to in 0..t_out {
                    let start = to * stride;
                    let mut acc = 0.0f32;
                    for kk in 0..kernel {
                        acc += self.data[in_base + start + kk];
                    }
                    out[out_base + to] = acc * inv;
                }
            }
        }
        Ok(Self {
            shape: Shape::new(&[n, c, t_out]),
            data: out,
        })
    }

    /// Gradient of [`Tensor::avg_pool1d`]: scatters `grad_out` back to the
    /// input positions.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes or parameters are inconsistent.
    pub fn avg_pool1d_grad(
        grad_out: &Tensor,
        input_shape: &[usize],
        kernel: usize,
        stride: usize,
    ) -> Result<Self> {
        if grad_out.shape.rank() != 3 || input_shape.len() != 3 {
            return Err(TensorError::RankMismatch {
                op: "avg_pool1d_grad",
                expected: 3,
                actual: grad_out.shape.rank(),
            });
        }
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "avg_pool1d_grad",
                message: "kernel and stride must be >= 1".into(),
            });
        }
        let (n, c, t) = (input_shape[0], input_shape[1], input_shape[2]);
        let t_out = grad_out.shape.dim(2);
        let mut out = vec![0.0f32; n * c * t];
        let inv = 1.0 / kernel as f32;
        for bn in 0..n {
            for cc in 0..c {
                let in_base = (bn * c + cc) * t;
                let out_base = (bn * c + cc) * t_out;
                for to in 0..t_out {
                    let g = grad_out.data[out_base + to] * inv;
                    let start = to * stride;
                    for kk in 0..kernel {
                        out[in_base + start + kk] += g;
                    }
                }
            }
        }
        Ok(Self {
            shape: Shape::new(&[n, c, t]),
            data: out,
        })
    }

    // ------------------------------------------------------------------
    // Comparison helpers
    // ------------------------------------------------------------------

    /// Returns `true` if every element differs from `other` by at most `tol`.
    ///
    /// Shapes must match exactly; otherwise returns `false`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape.same_as(&other.shape)
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same_as(&other.shape),
            "max_abs_diff requires identical shapes"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{} elements]", self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).sum_all(), 0.0);
        assert_eq!(Tensor::ones(&[4]).sum_all(), 4.0);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_length_check() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().data(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
        assert_eq!(a.mul_scalar(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.neg().data(), &[-1.0, -2.0, -3.0]);
        assert_eq!(t(&[-1.0, 2.0], &[2]).abs().data(), &[1.0, 2.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum_all(), 6.0);
        assert_eq!(a.mean_all(), 1.5);
        assert_eq!(a.max_all(), 4.0);
        assert_eq!(a.min_all(), -2.0);
    }

    #[test]
    fn argmax_last_dim() {
        let a = t(&[0.1, 0.9, 0.5, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(a.argmax_last_dim(), vec![1, 0]);
    }

    #[test]
    fn matmul_basic() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[2, 1]);
        assert!(a.matmul(&b).is_err());
        let a2 = t(&[1.0, 2.0], &[1, 2]);
        let b2 = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(a2.matmul(&b2).is_err());
    }

    #[test]
    fn transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose2().unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn conv1d_identity_kernel() {
        // K = 1, single channel, weight = 1 should reproduce the input.
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = t(&[1.0], &[1, 1, 1]);
        let y = x.conv1d_causal(&w, None, 1).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv1d_causal_shifts() {
        // Kernel [w0, w1] with dilation 1: y[t] = w0*x[t] + w1*x[t-1].
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = t(&[1.0, 10.0], &[1, 1, 2]);
        let y = x.conv1d_causal(&w, None, 1).unwrap();
        assert_eq!(y.data(), &[1.0, 12.0, 23.0, 34.0]);
    }

    #[test]
    fn conv1d_causal_dilation() {
        // Kernel [w0, w1] with dilation 2: y[t] = w0*x[t] + w1*x[t-2].
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = t(&[1.0, 10.0], &[1, 1, 2]);
        let y = x.conv1d_causal(&w, None, 2).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 13.0, 24.0]);
    }

    #[test]
    fn conv1d_bias_and_channels() {
        // Two input channels summed, bias added.
        let x = t(&[1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let w = t(&[1.0, 1.0], &[1, 2, 1]);
        let b = t(&[100.0], &[1]);
        let y = x.conv1d_causal(&w, Some(&b), 1).unwrap();
        assert_eq!(y.data(), &[111.0, 122.0]);
    }

    #[test]
    fn conv1d_dilation_equivalence_with_zero_padded_kernel() {
        // A dilation-2 kernel [a, b] equals a dilation-1 kernel [a, 0, b].
        let x = t(&[0.5, -1.0, 2.0, 3.0, 1.0, -2.0], &[1, 1, 6]);
        let w2 = t(&[0.3, -0.7], &[1, 1, 2]);
        let w1 = t(&[0.3, 0.0, -0.7], &[1, 1, 3]);
        let y2 = x.conv1d_causal(&w2, None, 2).unwrap();
        let y1 = x.conv1d_causal(&w1, None, 1).unwrap();
        assert!(y1.approx_eq(&y2, 1e-6));
    }

    #[test]
    fn conv1d_grad_shapes() {
        let x = Tensor::ones(&[2, 3, 8]);
        let w = Tensor::ones(&[4, 3, 2]);
        let y = x.conv1d_causal(&w, None, 2).unwrap();
        assert_eq!(y.dims(), &[2, 4, 8]);
        let gx = Tensor::conv1d_causal_grad_input(&y, &w, &[2, 3, 8], 2).unwrap();
        assert_eq!(gx.dims(), &[2, 3, 8]);
        let gw = Tensor::conv1d_causal_grad_weight(&x, &y, 2, 2).unwrap();
        assert_eq!(gw.dims(), &[4, 3, 2]);
    }

    #[test]
    fn conv1d_errors() {
        let x = Tensor::ones(&[1, 1, 4]);
        let w = Tensor::ones(&[1, 2, 2]);
        assert!(x.conv1d_causal(&w, None, 1).is_err()); // channel mismatch
        let w_ok = Tensor::ones(&[1, 1, 2]);
        assert!(x.conv1d_causal(&w_ok, None, 0).is_err()); // zero dilation
        let bad_bias = Tensor::ones(&[2]);
        assert!(x.conv1d_causal(&w_ok, Some(&bad_bias), 1).is_err());
    }

    #[test]
    fn avg_pool_forward_and_grad() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 1, 6]);
        let y = x.avg_pool1d(2, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 3]);
        assert_eq!(y.data(), &[1.5, 3.5, 5.5]);
        let g = Tensor::avg_pool1d_grad(&Tensor::ones(&[1, 1, 3]), &[1, 1, 6], 2, 2).unwrap();
        assert_eq!(g.data(), &[0.5, 0.5, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn avg_pool_errors() {
        let x = Tensor::ones(&[1, 1, 3]);
        assert!(x.avg_pool1d(0, 1).is_err());
        assert!(x.avg_pool1d(4, 1).is_err());
        assert!(Tensor::ones(&[3]).avg_pool1d(1, 1).is_err());
    }

    #[test]
    fn reshape_checks_volume() {
        let a = Tensor::arange(6);
        assert!(a.reshape(&[2, 3]).is_ok());
        assert!(a.reshape(&[4]).is_err());
    }

    #[test]
    fn accessors_at_set() {
        let mut a = Tensor::zeros(&[2, 2]);
        a.set(&[1, 0], 5.0).unwrap();
        assert_eq!(a.at(&[1, 0]).unwrap(), 5.0);
        assert!(a.at(&[2, 0]).is_err());
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0001, 2.0], &[2]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-6));
        assert!((a.max_abs_diff(&b) - 0.0001).abs() < 1e-6);
        let c = t(&[1.0], &[1]);
        assert!(!a.approx_eq(&c, 1.0));
    }
}
