//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every differentiable operation as a node holding the
//! forward value, the indices of its parents and a backward closure. Calling
//! [`Tape::backward`] walks the nodes in reverse creation order, propagates
//! the adjoints and accumulates gradients into every [`Param`] leaf.
//!
//! A fresh tape is created for every forward pass (training step); parameters
//! persist outside the tape.

use crate::param::Param;
use crate::tensor::Tensor;

/// A handle to a node recorded on a [`Tape`].
///
/// `Var` is a plain index: it is only meaningful together with the tape that
/// produced it. Using a `Var` with a different tape is a logic error and will
/// either panic or silently reference the wrong node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node index inside its tape (mostly useful for debugging).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Backward closure: maps the adjoint of this node to the adjoints of its
/// parents (one tensor per parent, in the same order as `parents`).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) parents: Vec<usize>,
    pub(crate) backward: Option<BackwardFn>,
    pub(crate) param: Option<Param>,
}

/// A gradient tape: records operations during the forward pass and replays
/// them in reverse to compute gradients.
///
/// # Example
///
/// ```
/// use pit_tensor::{Tape, Tensor, Param};
/// let w = Param::new(Tensor::from_vec(vec![2.0], &[1]).unwrap(), "w");
/// let mut tape = Tape::new();
/// let vw = tape.param(&w);
/// let sq = tape.mul(vw, vw);          // w^2
/// let loss = tape.sum(sq);
/// tape.backward(loss);
/// assert_eq!(w.grad().data(), &[4.0]); // d(w^2)/dw = 2w
/// ```
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a constant leaf (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Vec::new(), None, None)
    }

    /// Records a parameter leaf. Gradients reaching this node during
    /// [`Tape::backward`] are accumulated into the [`Param`].
    pub fn param(&mut self, param: &Param) -> Var {
        self.push(param.value(), Vec::new(), None, Some(param.clone()))
    }

    /// The forward value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this tape.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Shape of the forward value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this tape.
    pub fn dims(&self, var: Var) -> Vec<usize> {
        self.nodes[var.0].value.dims().to_vec()
    }

    pub(crate) fn push(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
        param: Option<Param>,
    ) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            backward,
            param,
        });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn push_unary(
        &mut self,
        parent: Var,
        value: Tensor,
        backward: impl Fn(&Tensor) -> Tensor + 'static,
    ) -> Var {
        self.push(
            value,
            vec![parent.0],
            Some(Box::new(move |g| vec![backward(g)])),
            None,
        )
    }

    pub(crate) fn push_binary(
        &mut self,
        a: Var,
        b: Var,
        value: Tensor,
        backward: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var {
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(move |g| {
                let (ga, gb) = backward(g);
                vec![ga, gb]
            })),
            None,
        )
    }

    pub(crate) fn push_ternary(
        &mut self,
        a: Var,
        b: Var,
        c: Var,
        value: Tensor,
        backward: impl Fn(&Tensor) -> (Tensor, Tensor, Tensor) + 'static,
    ) -> Var {
        self.push(
            value,
            vec![a.0, b.0, c.0],
            Some(Box::new(move |g| {
                let (ga, gb, gc) = backward(g);
                vec![ga, gb, gc]
            })),
            None,
        )
    }

    /// Runs reverse-mode differentiation from `root`.
    ///
    /// The adjoint of `root` is seeded with ones (for the usual scalar-loss
    /// case this is the value 1.0). Gradients are **accumulated** into every
    /// [`Param`] recorded on the tape; call [`Param::zero_grad`] before the
    /// forward pass to start from zero.
    ///
    /// # Panics
    ///
    /// Panics if `root` does not belong to this tape.
    pub fn backward(&mut self, root: Var) {
        let seed = Tensor::ones(self.nodes[root.0].value.dims());
        self.backward_with_seed(root, seed);
    }

    /// Runs reverse-mode differentiation from `root` with an explicit seed
    /// adjoint (must have the same shape as the value of `root`).
    ///
    /// # Panics
    ///
    /// Panics if the seed shape does not match the value of `root`.
    pub fn backward_with_seed(&mut self, root: Var, seed: Tensor) {
        assert!(
            seed.shape().same_as(self.nodes[root.0].value.shape()),
            "backward seed shape {} does not match root value shape {}",
            seed.shape(),
            self.nodes[root.0].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root.0] = Some(seed);

        for i in (0..=root.0).rev() {
            let Some(grad) = grads[i].take() else {
                continue;
            };
            let node = &self.nodes[i];
            if let Some(backward) = &node.backward {
                let parent_grads = backward(&grad);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward closure returned {} gradients for {} parents",
                    parent_grads.len(),
                    node.parents.len()
                );
                for (&p, pg) in node.parents.iter().zip(parent_grads) {
                    match &mut grads[p] {
                        Some(existing) => existing
                            .add_assign(&pg)
                            .expect("gradient accumulation shape mismatch"),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            if let Some(param) = &node.param {
                param.accumulate_grad(&grad);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_leaf_gets_no_gradient() {
        let p = Param::new(Tensor::from_vec(vec![3.0], &[1]).unwrap(), "p");
        let mut tape = Tape::new();
        let vp = tape.param(&p);
        let c = tape.constant(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let prod = tape.mul(vp, c);
        let loss = tape.sum(prod);
        tape.backward(loss);
        assert_eq!(p.grad().data(), &[2.0]);
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // loss = sum(x * x) where the same node is used twice.
        let p = Param::new(Tensor::from_vec(vec![3.0], &[1]).unwrap(), "p");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let sq = tape.mul(x, x);
        let loss = tape.sum(sq);
        tape.backward(loss);
        assert_eq!(p.grad().data(), &[6.0]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let p = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap(), "p");
        for _ in 0..2 {
            let mut tape = Tape::new();
            let x = tape.param(&p);
            let loss = tape.sum(x);
            tape.backward(loss);
        }
        assert_eq!(p.grad().data(), &[2.0]);
    }

    #[test]
    fn backward_with_seed_scales_gradient() {
        let p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(), "p");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        let seed = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        tape.backward_with_seed(x, seed);
        assert_eq!(p.grad().data(), &[10.0, 20.0]);
    }

    #[test]
    #[should_panic]
    fn bad_seed_shape_panics() {
        let p = Param::new(Tensor::zeros(&[2]), "p");
        let mut tape = Tape::new();
        let x = tape.param(&p);
        tape.backward_with_seed(x, Tensor::zeros(&[3]));
    }

    #[test]
    fn tape_len_tracks_nodes() {
        let mut tape = Tape::new();
        assert!(tape.is_empty());
        let a = tape.constant(Tensor::ones(&[1]));
        let _ = tape.push_unary(a, Tensor::ones(&[1]), |g| g.clone());
        assert_eq!(tape.len(), 2);
    }
}
