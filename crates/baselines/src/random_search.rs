//! Random-sampling baseline over the dilation space.

use pit_nas::pareto::ParetoPoint;
use pit_nas::SearchSpace;
use pit_nn::{Adam, Dataset, Layer, LossKind, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the random dilation search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomSearchConfig {
    /// Number of random architectures to sample and train.
    pub samples: usize,
    /// Training epochs per sampled architecture.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        Self {
            samples: 8,
            epochs: 5,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 0,
        }
    }
}

/// Randomly samples dilation assignments from a [`SearchSpace`], trains a
/// concrete model for each and reports the resulting accuracy-vs-size points.
///
/// The model is produced by a caller-supplied factory so the same search can
/// drive ResTCN-shaped, TEMPONet-shaped or custom networks. The factory
/// receives the sampled dilations and a seed and must return a trainable
/// [`Layer`] together with its deployed weight count.
pub struct RandomSearch {
    config: RandomSearchConfig,
    space: SearchSpace,
}

impl RandomSearch {
    /// Creates a random-search driver over `space`.
    pub fn new(config: RandomSearchConfig, space: SearchSpace) -> Self {
        Self { config, space }
    }

    /// The search space being sampled.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Samples one random dilation assignment.
    pub fn sample_dilations<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        (0..self.space.num_layers())
            .map(|i| 1usize << rng.gen_range(0..self.space.choices_for_layer(i)))
            .collect()
    }

    /// Runs the search: samples, trains and evaluates `samples` architectures
    /// and returns one [`ParetoPoint`] per architecture.
    pub fn run<M, F>(
        &self,
        mut make_model: F,
        train: &Dataset,
        val: &Dataset,
        loss: LossKind,
    ) -> Vec<ParetoPoint>
    where
        M: Layer,
        F: FnMut(&[usize], u64) -> (M, usize),
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut points = Vec::with_capacity(self.config.samples);
        for s in 0..self.config.samples {
            let dilations = self.sample_dilations(&mut rng);
            let (model, params) = make_model(&dilations, self.config.seed.wrapping_add(s as u64));
            let trainer = Trainer::new(TrainConfig {
                epochs: self.config.epochs,
                batch_size: self.config.batch_size,
                shuffle: true,
                patience: None,
                seed: self.config.seed.wrapping_add(1000 + s as u64),
            });
            let mut opt = Adam::new(model.params(), self.config.learning_rate);
            let _ = trainer.train(&model, train, Some(val), loss, &mut opt);
            let val_loss = Trainer::evaluate(&model, val, loss, self.config.batch_size);
            points.push(ParetoPoint::new(
                params,
                val_loss,
                dilations,
                format!("random-{s}"),
            ));
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_models::{GenericTcn, GenericTcnConfig};
    use pit_nas::SearchableNetwork;
    use pit_tensor::Tensor;

    fn toy_dataset(n: usize, t: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..t).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let y: f32 = x.iter().sum::<f32>() / t as f32;
            ds.push(
                Tensor::from_vec(x, &[1, t]).unwrap(),
                Tensor::from_vec(vec![y], &[1]).unwrap(),
            );
        }
        ds
    }

    #[test]
    fn sampled_dilations_are_valid() {
        let space = SearchSpace::new(vec![9, 17, 5]);
        let search = RandomSearch::new(RandomSearchConfig::default(), space);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let d = search.sample_dilations(&mut rng);
            assert_eq!(d.len(), 3);
            assert!(d[0] <= 8 && d[1] <= 16 && d[2] <= 4);
            assert!(d.iter().all(|x| x.is_power_of_two()));
        }
    }

    #[test]
    fn run_produces_one_point_per_sample() {
        let space = SearchSpace::new(vec![9, 17]);
        let config = RandomSearchConfig {
            samples: 3,
            epochs: 1,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 0,
        };
        let search = RandomSearch::new(config, space);
        let data = toy_dataset(24, 32, 0);
        let (train, val) = data.split(0.75);
        let points = search.run(
            |dilations, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
                net.set_dilations(dilations);
                let params = net.effective_weights();
                (net, params)
            },
            &train,
            &val,
            LossKind::Mse,
        );
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.loss.is_finite() && p.params > 0));
        assert!(points.iter().all(|p| p.dilations.len() == 2));
    }
}
