//! # pit-baselines
//!
//! The NAS baselines PIT is compared against in the paper:
//!
//! * [`proxyless`] — a re-implementation of the ProxylessNAS search strategy
//!   adapted to dilation search, as done manually by the authors for
//!   Table II: every searchable convolution becomes a set of explicit
//!   branches (one per power-of-two dilation), a single path is sampled and
//!   trained per step, and architecture parameters are updated from a
//!   reward that combines the task loss with a model-size penalty;
//! * [`random_search`] — a random-sampling baseline over the same dilation
//!   space, useful to check that both PIT and ProxylessNAS beat naive
//!   exploration at equal training budget;
//! * [`exhaustive`] — exhaustive enumeration of small dilation spaces,
//!   used by the tests to verify Pareto claims exactly.

pub mod exhaustive;
pub mod proxyless;
pub mod random_search;

pub use exhaustive::ExhaustiveSearch;
pub use proxyless::{
    ProxylessConfig, ProxylessOutcome, ProxylessSearch, ProxylessSupernet, SupernetLayerSpec,
};
pub use random_search::{RandomSearch, RandomSearchConfig};
