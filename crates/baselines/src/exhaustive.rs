//! Exhaustive enumeration of small dilation spaces.
//!
//! Used by integration tests to check Pareto claims exactly (every point PIT
//! or ProxylessNAS returns can be compared against the true front of a small
//! space), and available as a brute-force reference for tiny networks.

use pit_nas::pareto::{pareto_front, ParetoPoint};
use pit_nas::SearchSpace;
use pit_nn::{Adam, Dataset, Layer, LossKind, TrainConfig, Trainer};
use serde::{Deserialize, Serialize};

/// Configuration of the exhaustive search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExhaustiveConfig {
    /// Training epochs per architecture.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Upper bound on the number of architectures (guards against
    /// accidentally enumerating a paper-scale space).
    pub max_architectures: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExhaustiveConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            batch_size: 32,
            learning_rate: 1e-3,
            max_architectures: 128,
            seed: 0,
        }
    }
}

/// Trains every architecture of a (small) dilation space and returns all
/// points plus the exact Pareto front.
pub struct ExhaustiveSearch {
    config: ExhaustiveConfig,
    space: SearchSpace,
}

impl ExhaustiveSearch {
    /// Creates an exhaustive-search driver.
    pub fn new(config: ExhaustiveConfig, space: SearchSpace) -> Self {
        Self { config, space }
    }

    /// Runs the search and returns `(all points, exact Pareto front)`.
    ///
    /// # Panics
    ///
    /// Panics if the space exceeds `max_architectures`.
    pub fn run<M, F>(
        &self,
        mut make_model: F,
        train: &Dataset,
        val: &Dataset,
        loss: LossKind,
    ) -> (Vec<ParetoPoint>, Vec<ParetoPoint>)
    where
        M: Layer,
        F: FnMut(&[usize], u64) -> (M, usize),
    {
        let combos = self.space.enumerate(self.config.max_architectures);
        let mut points = Vec::with_capacity(combos.len());
        for (i, dilations) in combos.iter().enumerate() {
            let (model, params) = make_model(dilations, self.config.seed.wrapping_add(i as u64));
            let trainer = Trainer::new(TrainConfig {
                epochs: self.config.epochs,
                batch_size: self.config.batch_size,
                shuffle: true,
                patience: None,
                seed: self.config.seed.wrapping_add(500 + i as u64),
            });
            let mut opt = Adam::new(model.params(), self.config.learning_rate);
            let _ = trainer.train(&model, train, Some(val), loss, &mut opt);
            let val_loss = Trainer::evaluate(&model, val, loss, self.config.batch_size);
            points.push(ParetoPoint::new(
                params,
                val_loss,
                dilations.clone(),
                format!("exhaustive-{i}"),
            ));
        }
        let front = pareto_front(&points);
        (points, front)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_models::{GenericTcn, GenericTcnConfig};
    use pit_nas::SearchableNetwork;
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn enumerates_and_ranks_a_tiny_space() {
        let space = SearchSpace::new(vec![9]); // 4 architectures
        let search = ExhaustiveSearch::new(
            ExhaustiveConfig {
                epochs: 1,
                batch_size: 8,
                ..ExhaustiveConfig::default()
            },
            space,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut ds = Dataset::new();
        for _ in 0..16 {
            let x: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let y = x.iter().sum::<f32>() / 16.0;
            ds.push(
                Tensor::from_vec(x, &[1, 16]).unwrap(),
                Tensor::from_vec(vec![y], &[1]).unwrap(),
            );
        }
        let (train, val) = ds.split(0.75);
        let (points, front) = search.run(
            |dilations, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let cfg = GenericTcnConfig {
                    channels: vec![4],
                    rf_max: vec![9],
                    input_channels: 1,
                    outputs: 1,
                };
                let net = GenericTcn::new(&mut rng, &cfg);
                net.set_dilations(dilations);
                let p = net.effective_weights();
                (net, p)
            },
            &train,
            &val,
            LossKind::Mse,
        );
        assert_eq!(points.len(), 4);
        assert!(!front.is_empty() && front.len() <= 4);
        // The front must contain the smallest architecture or something that dominates it.
        let min_params = points.iter().map(|p| p.params).min().unwrap();
        assert!(front.iter().any(|p| p.params <= min_params));
    }
}
