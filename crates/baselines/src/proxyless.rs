//! ProxylessNAS-style dilation search.
//!
//! ProxylessNAS (Cai et al.) builds a supernet that contains every candidate
//! implementation of every layer and trains, per step, only one sampled path
//! together with the architecture parameters. The paper adapts it to
//! dilation search by listing, for every convolution, one branch per
//! power-of-two dilation with `C_in`/`C_out` kept constant — exactly the
//! search space PIT explores implicitly. This module re-implements that
//! adapted baseline:
//!
//! * every searchable layer holds one [`CausalConv1d`] branch per dilation
//!   choice and a vector of architecture logits α;
//! * each training step samples a path from `softmax(α)`, updates the
//!   weights of that path only, then updates α with a REINFORCE-style rule
//!   whose reward is `−(validation loss + size_weight · path size)`;
//! * the final architecture is the per-layer argmax of α, optionally
//!   fine-tuned before evaluation.
//!
//! Because only one path is trained per step, many more epochs are required
//! than a plain training — which is exactly the training-time gap Fig. 5 of
//! the paper reports.

use pit_models::{LayerDesc, NetworkDescriptor, TempoNetConfig};
use pit_nas::pareto::ParetoPoint;
use pit_nn::layers::{AvgPool1d, BatchNorm1d, CausalConv1d, Linear};
use pit_nn::{Adam, Dataset, Layer, LossKind, Mode, Optimizer, Trainer};
use pit_tensor::{ops::mask::gamma_len, Param, Tape, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One searchable layer of the supernet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupernetLayerSpec {
    /// Output channels of the layer.
    pub out_channels: usize,
    /// Maximum receptive field (defines the dilation choices, as in PIT).
    pub rf_max: usize,
    /// Whether a stride-2 average pooling follows the layer.
    pub pool_after: bool,
}

/// Configuration of a ProxylessNAS dilation search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxylessConfig {
    /// Input channels of the network.
    pub input_channels: usize,
    /// Searchable layers, in order.
    pub layers: Vec<SupernetLayerSpec>,
    /// Hidden width of the fully connected head.
    pub fc_hidden: usize,
    /// Input window length.
    pub input_length: usize,
    /// Weight of the model-size term in the architecture reward
    /// (plays the role PIT's λ plays: larger ⇒ smaller networks).
    pub size_weight: f32,
    /// Number of search epochs over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for the path weights.
    pub learning_rate: f32,
    /// Learning rate for the architecture logits.
    pub arch_learning_rate: f32,
    /// Fine-tuning epochs of the selected path after the search.
    pub finetune_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ProxylessConfig {
    /// Builds the supernet specification matching a TEMPONet seed: same
    /// seven convolutions, channels, receptive fields, pooling positions and
    /// head — i.e. exactly the search space used for PIT in Table II.
    pub fn temponet_like(cfg: &TempoNetConfig) -> Self {
        let rf = cfg.rf_max_per_layer();
        let block_sizes = cfg.block_sizes();
        let mut layers = Vec::with_capacity(7);
        let mut idx = 0usize;
        for &len in block_sizes.iter() {
            for j in 0..len {
                layers.push(SupernetLayerSpec {
                    out_channels: cfg.channels[idx],
                    rf_max: rf[idx],
                    pool_after: j == len - 1,
                });
                idx += 1;
            }
        }
        Self {
            input_channels: cfg.input_channels,
            layers,
            fc_hidden: cfg.fc_hidden,
            input_length: cfg.input_length,
            size_weight: 1e-6,
            epochs: 20,
            batch_size: 32,
            learning_rate: 1e-3,
            arch_learning_rate: 0.1,
            finetune_epochs: 2,
            seed: 0,
        }
    }
}

struct SupernetLayer {
    branches: Vec<CausalConv1d>,
    dilations: Vec<usize>,
    norm: BatchNorm1d,
    alpha: Vec<f32>,
    pool: Option<AvgPool1d>,
}

impl SupernetLayer {
    fn softmax(&self) -> Vec<f32> {
        let max = self.alpha.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = self.alpha.iter().map(|a| (a - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let probs = self.softmax();
        let mut u: f32 = rng.gen();
        for (i, p) in probs.iter().enumerate() {
            if u < *p {
                return i;
            }
            u -= p;
        }
        probs.len() - 1
    }

    fn argmax(&self) -> usize {
        self.alpha
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The ProxylessNAS supernet: a TEMPONet-shaped network where every
/// searchable convolution is replaced by one branch per dilation choice.
pub struct ProxylessSupernet {
    layers: Vec<SupernetLayer>,
    fc_hidden: Linear,
    fc_out: Linear,
    config: ProxylessConfig,
}

impl ProxylessSupernet {
    /// Builds the supernet with freshly initialised branch weights.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no layers or an input length that is
    /// not divisible by the total pooling factor.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: &ProxylessConfig) -> Self {
        assert!(
            !config.layers.is_empty(),
            "supernet needs at least one layer"
        );
        let pools = config.layers.iter().filter(|l| l.pool_after).count();
        let pool_factor = 1usize << pools;
        assert_eq!(
            config.input_length % pool_factor,
            0,
            "input_length must be divisible by the pooling factor {pool_factor}"
        );
        let mut layers = Vec::with_capacity(config.layers.len());
        let mut in_ch = config.input_channels;
        for spec in &config.layers {
            let l = gamma_len(spec.rf_max);
            let dilations: Vec<usize> = (0..l).map(|j| 1usize << j).collect();
            let branches: Vec<CausalConv1d> = dilations
                .iter()
                .map(|&d| {
                    let kernel = (spec.rf_max - 1) / d + 1;
                    CausalConv1d::new(rng, in_ch, spec.out_channels, kernel, d)
                })
                .collect();
            layers.push(SupernetLayer {
                alpha: vec![0.0; branches.len()],
                branches,
                dilations,
                norm: BatchNorm1d::new(spec.out_channels),
                pool: spec.pool_after.then(|| AvgPool1d::new(2, 2)),
            });
            in_ch = spec.out_channels;
        }
        let final_len = config.input_length / pool_factor;
        let flat = in_ch * final_len;
        Self {
            layers,
            fc_hidden: Linear::new(rng, flat, config.fc_hidden),
            fc_out: Linear::new(rng, config.fc_hidden, 1),
            config: config.clone(),
        }
    }

    /// Number of searchable layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of weights stored by the supernet (all branches), the
    /// memory-cost figure ProxylessNAS pays and PIT avoids.
    pub fn supernet_weights(&self) -> usize {
        let branch_weights: usize = self
            .layers
            .iter()
            .map(|l| {
                l.branches.iter().map(|b| b.num_weights()).sum::<usize>() + l.norm.num_weights()
            })
            .sum();
        branch_weights + self.fc_hidden.num_weights() + self.fc_out.num_weights()
    }

    /// Samples one branch index per layer from the current `softmax(α)`.
    pub fn sample_path<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        self.layers.iter().map(|l| l.sample(rng)).collect()
    }

    /// The most likely path (per-layer argmax of α).
    pub fn argmax_path(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.argmax()).collect()
    }

    /// Dilations selected by a path.
    pub fn path_dilations(&self, path: &[usize]) -> Vec<usize> {
        self.layers
            .iter()
            .zip(path.iter())
            .map(|(l, &b)| l.dilations[b])
            .collect()
    }

    /// Number of weights of the stand-alone network described by a path.
    pub fn path_weights(&self, path: &[usize]) -> usize {
        let conv: usize = self
            .layers
            .iter()
            .zip(path.iter())
            .map(|(l, &b)| l.branches[b].num_weights() + l.norm.num_weights())
            .sum();
        conv + self.fc_hidden.num_weights() + self.fc_out.num_weights()
    }

    /// Trainable parameters of a path (used for the per-step weight update).
    pub fn path_params(&self, path: &[usize]) -> Vec<Param> {
        let mut p = Vec::new();
        for (l, &b) in self.layers.iter().zip(path.iter()) {
            p.extend(l.branches[b].params());
            p.extend(l.norm.params());
        }
        p.extend(self.fc_hidden.params());
        p.extend(self.fc_out.params());
        p
    }

    /// All weight parameters of the supernet.
    pub fn all_params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        for l in &self.layers {
            for b in &l.branches {
                p.extend(b.params());
            }
            p.extend(l.norm.params());
        }
        p.extend(self.fc_hidden.params());
        p.extend(self.fc_out.params());
        p
    }

    /// Runs the forward pass of one path.
    pub fn forward_path(&self, tape: &mut Tape, input: Var, path: &[usize], mode: Mode) -> Var {
        let mut x = input;
        for (layer, &b) in self.layers.iter().zip(path.iter()) {
            x = layer.branches[b].forward(tape, x, mode);
            x = layer.norm.forward(tape, x, mode);
            x = tape.relu(x);
            if let Some(pool) = &layer.pool {
                x = pool.forward(tape, x, mode);
            }
        }
        let flat = tape.flatten_batch(x);
        let h = self.fc_hidden.forward(tape, flat, mode);
        let h = tape.relu(h);
        self.fc_out.forward(tape, h, mode)
    }

    /// Static descriptor of the network selected by a path (for deployment
    /// studies), using the configured input length.
    pub fn path_descriptor(&self, path: &[usize]) -> NetworkDescriptor {
        let mut d = NetworkDescriptor::new("ProxylessNAS-path");
        let mut t = self.config.input_length;
        for (layer, &b) in self.layers.iter().zip(path.iter()) {
            let conv = &layer.branches[b];
            d.push(LayerDesc::Conv1d {
                c_in: conv.in_channels(),
                c_out: conv.out_channels(),
                kernel: conv.kernel_size(),
                dilation: conv.dilation(),
                t_in: t,
                t_out: t,
            });
            d.push(LayerDesc::BatchNorm {
                channels: conv.out_channels(),
                t,
            });
            if layer.pool.is_some() {
                let t_out = (t - 2) / 2 + 1;
                d.push(LayerDesc::AvgPool {
                    channels: conv.out_channels(),
                    kernel: 2,
                    stride: 2,
                    t_in: t,
                    t_out,
                });
                t = t_out;
            }
        }
        d.push(LayerDesc::Linear {
            in_features: self.fc_hidden.in_features(),
            out_features: self.fc_hidden.out_features(),
        });
        d.push(LayerDesc::Linear {
            in_features: self.fc_out.in_features(),
            out_features: self.fc_out.out_features(),
        });
        d
    }
}

/// A wrapper that makes one fixed path of the supernet usable as a [`Layer`]
/// (for fine-tuning and evaluation through the standard trainer).
pub struct PathModel<'a> {
    supernet: &'a ProxylessSupernet,
    path: Vec<usize>,
}

impl Layer for PathModel<'_> {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        self.supernet.forward_path(tape, input, &self.path, mode)
    }

    fn params(&self) -> Vec<Param> {
        self.supernet.path_params(&self.path)
    }
}

/// Result of one ProxylessNAS search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProxylessOutcome {
    /// Selected dilation per searchable layer.
    pub dilations: Vec<usize>,
    /// Number of weights of the selected stand-alone network.
    pub params: usize,
    /// Validation loss of the selected (fine-tuned) network.
    pub val_loss: f32,
    /// Wall-clock duration of the whole search.
    pub wall_time: Duration,
    /// Size-penalty weight that produced the outcome.
    pub size_weight: f32,
    /// Number of search epochs run.
    pub epochs_run: usize,
}

impl ProxylessOutcome {
    /// Converts the outcome into a point of the accuracy-vs-size plane.
    pub fn to_pareto_point(&self, label: impl Into<String>) -> ParetoPoint {
        ParetoPoint::new(self.params, self.val_loss, self.dilations.clone(), label)
    }
}

/// Drives the ProxylessNAS-style search.
pub struct ProxylessSearch {
    config: ProxylessConfig,
}

impl ProxylessSearch {
    /// Creates a search driver.
    pub fn new(config: ProxylessConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ProxylessConfig {
        &self.config
    }

    /// Runs the search on a freshly built supernet and returns the outcome.
    pub fn run(
        &self,
        supernet: &mut ProxylessSupernet,
        train: &Dataset,
        val: &Dataset,
        loss: LossKind,
    ) -> ProxylessOutcome {
        let cfg = &self.config;
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut opt = Adam::new(supernet.all_params(), cfg.learning_rate);
        // Reward baseline for the REINFORCE-style architecture update.
        let mut baseline = 0.0f32;
        let mut baseline_initialised = false;
        // Normalise the size term by the largest possible path so that
        // size_weight has a scale comparable to the loss.
        let max_path: Vec<usize> = vec![0; supernet.num_layers()]; // branch 0 = dilation 1 = largest kernels
        let max_size = supernet.path_weights(&max_path) as f32;

        let mut epochs_run = 0usize;
        for _epoch in 0..cfg.epochs {
            let batches = train.batches(cfg.batch_size, Some(&mut rng));
            let val_batches = val.batches::<StdRng>(cfg.batch_size, None);
            for (i, batch) in batches.iter().enumerate() {
                // --- weight update on a sampled path ---
                let path = supernet.sample_path(&mut rng);
                opt.zero_grad();
                let mut tape = Tape::new();
                let x = tape.constant(batch.inputs.clone());
                let pred = supernet.forward_path(&mut tape, x, &path, Mode::Train);
                let l = loss.apply(&mut tape, pred, &batch.targets);
                tape.backward(l);
                opt.step();

                // --- architecture update on a validation batch ---
                let vb = &val_batches[i % val_batches.len().max(1)];
                let arch_path = supernet.sample_path(&mut rng);
                let mut vtape = Tape::new();
                let vx = vtape.constant(vb.inputs.clone());
                let vpred = supernet.forward_path(&mut vtape, vx, &arch_path, Mode::Eval);
                let vl = loss.apply(&mut vtape, vpred, &vb.targets);
                let size_term =
                    cfg.size_weight * supernet.path_weights(&arch_path) as f32 / max_size.max(1.0);
                let cost = vtape.value(vl).item() + size_term;
                if !baseline_initialised {
                    baseline = cost;
                    baseline_initialised = true;
                } else {
                    baseline = 0.9 * baseline + 0.1 * cost;
                }
                let advantage = baseline - cost; // positive when better than average
                for (layer, &chosen) in supernet.layers.iter_mut().zip(arch_path.iter()) {
                    let probs = layer.softmax();
                    for (j, p) in probs.iter().enumerate() {
                        let indicator = if j == chosen { 1.0 } else { 0.0 };
                        layer.alpha[j] += cfg.arch_learning_rate * advantage * (indicator - p);
                    }
                }
            }
            epochs_run += 1;
        }

        // Select the most likely path, optionally fine-tune it, and evaluate.
        let best_path = supernet.argmax_path();
        if cfg.finetune_epochs > 0 {
            let model = PathModel {
                supernet,
                path: best_path.clone(),
            };
            let trainer = Trainer::new(pit_nn::TrainConfig {
                epochs: cfg.finetune_epochs,
                batch_size: cfg.batch_size,
                shuffle: true,
                patience: None,
                seed: cfg.seed.wrapping_add(17),
            });
            let mut fopt = Adam::new(model.params(), cfg.learning_rate);
            let _ = trainer.train(&model, train, Some(val), loss, &mut fopt);
        }
        let model = PathModel {
            supernet,
            path: best_path.clone(),
        };
        let val_loss = Trainer::evaluate(&model, val, loss, cfg.batch_size);

        ProxylessOutcome {
            dilations: supernet.path_dilations(&best_path),
            params: supernet.path_weights(&best_path),
            val_loss,
            wall_time: start.elapsed(),
            size_weight: cfg.size_weight,
            epochs_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tensor;

    fn tiny_config() -> ProxylessConfig {
        ProxylessConfig {
            input_channels: 1,
            layers: vec![
                SupernetLayerSpec {
                    out_channels: 4,
                    rf_max: 9,
                    pool_after: true,
                },
                SupernetLayerSpec {
                    out_channels: 4,
                    rf_max: 9,
                    pool_after: true,
                },
            ],
            fc_hidden: 4,
            input_length: 32,
            size_weight: 0.0,
            epochs: 2,
            batch_size: 8,
            learning_rate: 0.01,
            arch_learning_rate: 0.2,
            finetune_epochs: 0,
            seed: 0,
        }
    }

    fn toy_dataset(n: usize, t: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..t).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let y: f32 = x.iter().sum::<f32>() / t as f32;
            ds.push(
                Tensor::from_vec(x, &[1, t]).unwrap(),
                Tensor::from_vec(vec![y], &[1]).unwrap(),
            );
        }
        ds
    }

    #[test]
    fn supernet_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = ProxylessSupernet::new(&mut rng, &tiny_config());
        assert_eq!(net.num_layers(), 2);
        // rf_max 9 -> 4 dilation branches per layer.
        assert_eq!(net.path_dilations(&[0, 3]), vec![1, 8]);
        // The supernet stores strictly more weights than any single path.
        assert!(net.supernet_weights() > net.path_weights(&[0, 0]));
        // Larger dilation -> smaller kernels -> fewer path weights.
        assert!(net.path_weights(&[3, 3]) < net.path_weights(&[0, 0]));
    }

    #[test]
    fn forward_path_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = ProxylessSupernet::new(&mut rng, &tiny_config());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 1, 32]));
        let y = net.forward_path(&mut tape, x, &[1, 2], Mode::Train);
        assert_eq!(tape.dims(y), vec![2, 1]);
    }

    #[test]
    fn path_descriptor_reflects_dilations() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = ProxylessSupernet::new(&mut rng, &tiny_config());
        let small = net.path_descriptor(&[3, 3]);
        let large = net.path_descriptor(&[0, 0]);
        assert!(small.total_weights() < large.total_weights());
    }

    #[test]
    fn temponet_like_spec_matches_search_space() {
        let cfg = TempoNetConfig::paper();
        let spec = ProxylessConfig::temponet_like(&cfg);
        assert_eq!(spec.layers.len(), 7);
        assert_eq!(spec.layers.iter().filter(|l| l.pool_after).count(), 3);
        let rf: Vec<usize> = spec.layers.iter().map(|l| l.rf_max).collect();
        assert_eq!(rf, cfg.rf_max_per_layer());
    }

    #[test]
    fn search_runs_and_prefers_small_models_under_size_pressure() {
        let data = toy_dataset(48, 32, 1);
        let (train, val) = data.split(0.75);
        // Huge size weight: the reward is dominated by the size term, so the
        // search must converge towards the maximum-dilation (smallest) path.
        let cfg = ProxylessConfig {
            size_weight: 50.0,
            epochs: 6,
            ..tiny_config()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut supernet = ProxylessSupernet::new(&mut rng, &cfg);
        let outcome = ProxylessSearch::new(cfg).run(&mut supernet, &train, &val, LossKind::Mse);
        assert_eq!(outcome.epochs_run, 6);
        assert!(outcome.val_loss.is_finite());
        assert_eq!(outcome.dilations.len(), 2);
        // Under dominant size pressure the search must land on a heavily
        // dilated (small) path — well below the dense dilation-1 path.
        assert!(
            outcome.dilations.iter().all(|&d| d >= 4),
            "expected large dilations, got {:?}",
            outcome.dilations
        );
        assert!(outcome.params < supernet.path_weights(&[0, 0]));
        let point = outcome.to_pareto_point("proxyless");
        assert_eq!(point.params, outcome.params);
    }
}
