//! The open-loop replay driver.
//!
//! One worker thread per connection plays its event script against an
//! absolute timeline: all workers share one epoch `Instant`, every event
//! carries an intended send time, and a worker never lets the server's
//! pace slow its own sends down. Latency is measured from the *intended*
//! send time of the PUSH that owes each emission, not from when the
//! bytes happened to leave — the coordinated-omission-safe convention:
//! if the daemon stalls for a second, a second of queued sends all
//! record second-long latencies instead of quietly shifting the whole
//! schedule right.
//!
//! Each worker keeps, per open stream, a FIFO of `(intended send ns,
//! emissions owed)` entries derived from the model's structural cadence
//! (see [`crate::oracle`]); arriving EMIT frames consume the FIFO in
//! order, so every emission is attributed to exactly one intended send
//! time. When the FIFO runs dry or a stream closes with entries left,
//! that is an accounting error the run reports rather than hides.

use crate::oracle::ModelTable;
use crate::workload::{ConnScript, EventKind, Workload};
use pit_serve::hist::{Histogram, HistogramSnapshot};
use pit_serve::{Client, ClientBuilder, ServerFrame};
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the driver reaches the daemon.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Binary-protocol address workers connect to.
    pub addr: SocketAddr,
    /// Wall-clock budget for the post-schedule drain (waiting for the
    /// daemon to deliver final emissions and CLOSED frames).
    pub drain_timeout: Duration,
}

/// Client-side accounting errors, each a reconciliation failure in the
/// making.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorCounts {
    /// Transport failures (a worker lost its connection mid-script).
    pub transport: u64,
    /// ERROR frames received from the daemon.
    pub protocol: u64,
    /// Emissions that arrived with no FIFO entry owing them.
    pub unexpected_emissions: u64,
    /// Emissions still owed when the stream's CLOSED arrived.
    pub missing_emissions: u64,
    /// Workers whose drain hit the timeout before every CLOSED arrived.
    pub drain_incomplete: u64,
}

impl ErrorCounts {
    fn absorb(&mut self, other: &ErrorCounts) {
        self.transport += other.transport;
        self.protocol += other.protocol;
        self.unexpected_emissions += other.unexpected_emissions;
        self.missing_emissions += other.missing_emissions;
        self.drain_incomplete += other.drain_incomplete;
    }

    /// True when no counter fired.
    pub fn is_clean(&self) -> bool {
        self.transport == 0
            && self.protocol == 0
            && self.unexpected_emissions == 0
            && self.missing_emissions == 0
            && self.drain_incomplete == 0
    }

    /// Sum of all counters (report convenience).
    pub fn total(&self) -> u64 {
        self.transport
            + self.protocol
            + self.unexpected_emissions
            + self.missing_emissions
            + self.drain_incomplete
    }
}

/// Everything the run produced on the client side.
pub struct DriverOutcome {
    /// Per-scenario emission latency (intended-send → receipt),
    /// workload scenario order.
    pub scenario_hists: Vec<HistogramSnapshot>,
    /// All scenarios merged.
    pub total_hist: HistogramSnapshot,
    /// Send lag: actual send minus intended send — scheduler health;
    /// should stay microseconds unless the driver machine is saturated.
    pub send_lag: HistogramSnapshot,
    /// OPENED acks received.
    pub opens_acked: u64,
    /// CLOSED frames received.
    pub closes_seen: u64,
    /// Emissions received across all streams.
    pub emissions_received: u64,
    /// Accounting errors.
    pub errors: ErrorCounts,
    /// Wall seconds from epoch to the last event actually sent.
    pub send_wall_seconds: f64,
    /// Wall seconds from epoch to full drain.
    pub total_wall_seconds: f64,
    /// Recorded outputs for verify-sampled segments:
    /// `(session, segment)` → `(model index, concatenated outputs)`.
    pub verify_outputs: HashMap<(u32, u32), (usize, Vec<f32>)>,
}

struct StreamState {
    scenario: usize,
    model: usize,
    steps: usize,
    /// `(intended send ns, emissions still owed to that send)`.
    fifo: VecDeque<(u64, u64)>,
    /// `Some((session, segment, outputs))` for verify-sampled segments.
    verify: Option<(u32, u32, Vec<f32>)>,
}

struct WorkerResult {
    scenario_hists: Vec<HistogramSnapshot>,
    send_lag: HistogramSnapshot,
    opens_acked: u64,
    closes_seen: u64,
    emissions_received: u64,
    errors: ErrorCounts,
    last_send_ns: u64,
    verify_outputs: HashMap<(u32, u32), (usize, Vec<f32>)>,
}

/// Plays the whole workload against a live daemon.
///
/// Connects every worker before starting the clock (connection setup
/// must not eat into the schedule), runs the scripts, drains, and
/// merges the per-worker accounting.
///
/// # Errors
///
/// Returns a message when a worker cannot connect at all; in-flight
/// transport failures are reported through [`ErrorCounts`] instead so
/// one dropped connection does not void the rest of the run.
pub fn drive(
    workload: &Workload,
    table: &ModelTable,
    config: &DriverConfig,
) -> Result<DriverOutcome, String> {
    let mut clients = Vec::with_capacity(workload.conns.len());
    for i in 0..workload.conns.len() {
        let client = ClientBuilder::new()
            .connect_timeout(Duration::from_secs(10))
            .read_timeout(Duration::from_secs(10))
            .write_batch(64)
            .connect(config.addr)
            .map_err(|e| format!("worker {i} cannot connect to {}: {e:?}", config.addr))?;
        clients.push(client);
    }

    let scenario_count = workload.scenarios.len();
    let table = ArcTableView::new(table);
    let epoch = Instant::now();
    let drain_deadline_ns =
        nanos_of(epoch.elapsed()) + workload.end_us * 1_000 + nanos_of(config.drain_timeout);

    let handles: Vec<std::thread::JoinHandle<WorkerResult>> = workload
        .conns
        .iter()
        .zip(clients)
        .map(|(script, client)| {
            let script = script.clone();
            let table = table.clone();
            std::thread::spawn(move || {
                run_worker(
                    script,
                    client,
                    &table,
                    scenario_count,
                    epoch,
                    drain_deadline_ns,
                )
            })
        })
        .collect();

    let mut scenario_hists = vec![HistogramSnapshot::empty(); scenario_count];
    let mut send_lag = HistogramSnapshot::empty();
    let mut outcome = DriverOutcome {
        scenario_hists: Vec::new(),
        total_hist: HistogramSnapshot::empty(),
        send_lag: HistogramSnapshot::empty(),
        opens_acked: 0,
        closes_seen: 0,
        emissions_received: 0,
        errors: ErrorCounts::default(),
        send_wall_seconds: 0.0,
        total_wall_seconds: 0.0,
        verify_outputs: HashMap::new(),
    };
    let mut last_send_ns = 0u64;
    for handle in handles {
        let r = handle.join().map_err(|_| "a worker panicked".to_string())?;
        for (merged, part) in scenario_hists.iter_mut().zip(&r.scenario_hists) {
            merged.merge(part);
        }
        send_lag.merge(&r.send_lag);
        outcome.opens_acked += r.opens_acked;
        outcome.closes_seen += r.closes_seen;
        outcome.emissions_received += r.emissions_received;
        outcome.errors.absorb(&r.errors);
        outcome.verify_outputs.extend(r.verify_outputs);
        last_send_ns = last_send_ns.max(r.last_send_ns);
    }
    let mut total = HistogramSnapshot::empty();
    for h in &scenario_hists {
        total.merge(h);
    }
    outcome.scenario_hists = scenario_hists;
    outcome.total_hist = total;
    outcome.send_lag = send_lag;
    outcome.send_wall_seconds = last_send_ns as f64 / 1e9;
    outcome.total_wall_seconds = epoch.elapsed().as_secs_f64();
    Ok(outcome)
}

/// The driver threads only read the table; a raw shared reference with a
/// lifetime does not cross `thread::spawn`, so clone the pieces the
/// workers need into an `Arc`d view: per-model channels and cadence
/// lookups go through the original table via index math done up front.
#[derive(Clone)]
struct ArcTableView {
    names: Arc<Vec<String>>,
    channels: Arc<Vec<usize>>,
    /// Per model: `cum[n]` = emissions owed after `n` steps (probed
    /// horizon; steady state extends at one per step).
    cadence: Arc<Vec<Vec<u64>>>,
}

impl ArcTableView {
    fn new(table: &ModelTable) -> Self {
        let mut names = Vec::with_capacity(table.len());
        let mut channels = Vec::with_capacity(table.len());
        let mut cadence = Vec::with_capacity(table.len());
        for idx in 0..table.len() {
            names.push(table.get(idx).name.clone());
            channels.push(table.get(idx).channels);
            // Rebuild the cumulative table through the public cadence
            // API so this view cannot drift from the oracle's.
            let horizon = 512;
            let mut cum = Vec::with_capacity(horizon + 1);
            cum.push(0u64);
            for n in 1..=horizon {
                cum.push(table.expected_emissions(idx, 0, n));
            }
            cadence.push(cum);
        }
        Self {
            names: Arc::new(names),
            channels: Arc::new(channels),
            cadence: Arc::new(cadence),
        }
    }

    fn expected_emissions(&self, model: usize, from: usize, to: usize) -> u64 {
        let cum = &self.cadence[model];
        let at = |n: usize| -> u64 {
            if n < cum.len() {
                cum[n]
            } else {
                cum[cum.len() - 1] + (n - (cum.len() - 1)) as u64
            }
        };
        at(to) - at(from)
    }
}

fn nanos_of(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn run_worker(
    script: ConnScript,
    mut client: Client,
    table: &ArcTableView,
    scenario_count: usize,
    epoch: Instant,
    drain_deadline_ns: u64,
) -> WorkerResult {
    let scenario_hists: Vec<Histogram> =
        (0..scenario_count).map(|_| Histogram::default()).collect();
    let send_lag = Histogram::default();
    let mut streams: HashMap<u32, StreamState> = HashMap::new();
    let mut result = WorkerResult {
        scenario_hists: Vec::new(),
        send_lag: HistogramSnapshot::empty(),
        opens_acked: 0,
        closes_seen: 0,
        emissions_received: 0,
        errors: ErrorCounts::default(),
        last_send_ns: 0,
        verify_outputs: HashMap::new(),
    };

    let mut next = 0usize;
    let mut broken = false;
    'schedule: while next < script.events.len() {
        let now_ns = nanos_of(epoch.elapsed());
        // Send everything due, batched into one flush.
        let mut sent_any = false;
        while next < script.events.len() {
            let event = &script.events[next];
            let intended_ns = event.at_us * 1_000;
            if intended_ns > now_ns {
                break;
            }
            send_lag.record(now_ns.saturating_sub(intended_ns));
            let sent = match &event.kind {
                EventKind::Open {
                    stream,
                    model,
                    scenario,
                    session,
                    segment,
                    verify,
                } => {
                    streams.insert(
                        *stream,
                        StreamState {
                            scenario: *scenario,
                            model: *model,
                            steps: 0,
                            fifo: VecDeque::new(),
                            verify: verify.then(|| (*session, *segment, Vec::new())),
                        },
                    );
                    client.open_with_model(*stream, table.names[*model].as_str())
                }
                EventKind::Push { stream, samples } => {
                    let state = streams.get_mut(stream).expect("push on tracked stream");
                    let channels = table.channels[state.model];
                    let burst = samples.len() / channels;
                    let owed =
                        table.expected_emissions(state.model, state.steps, state.steps + burst);
                    if owed > 0 {
                        state.fifo.push_back((intended_ns, owed));
                    }
                    state.steps += burst;
                    client.push(*stream, channels as u32, samples)
                }
                EventKind::Close { stream } => client.close(*stream),
            };
            result.last_send_ns = now_ns;
            next += 1;
            sent_any = true;
            if sent.is_err() {
                broken = true;
                break 'schedule;
            }
        }
        if sent_any && client.flush().is_err() {
            broken = true;
            break;
        }
        // Wait for the next event (or a frame, whichever first).
        let wait_ns = if next < script.events.len() {
            (script.events[next].at_us * 1_000).saturating_sub(nanos_of(epoch.elapsed()))
        } else {
            0
        };
        if wait_ns == 0 {
            continue;
        }
        match client.recv_timeout(Duration::from_nanos(wait_ns.min(5_000_000))) {
            Ok(Some(frame)) => {
                handle_frame(frame, &mut streams, &scenario_hists, epoch, &mut result)
            }
            Ok(None) => {}
            Err(_) => {
                broken = true;
                break;
            }
        }
    }

    if broken {
        result.errors.transport += 1;
    } else {
        let _ = client.flush();
        // Drain: the daemon owes one CLOSED per segment, delivered after
        // that stream's final emissions.
        while result.closes_seen < script.segments {
            if nanos_of(epoch.elapsed()) > drain_deadline_ns {
                result.errors.drain_incomplete += 1;
                break;
            }
            match client.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(frame)) => {
                    handle_frame(frame, &mut streams, &scenario_hists, epoch, &mut result)
                }
                Ok(None) => {}
                Err(_) => {
                    result.errors.transport += 1;
                    break;
                }
            }
        }
    }

    result.scenario_hists = scenario_hists.iter().map(Histogram::snapshot).collect();
    result.send_lag = send_lag.snapshot();
    result
}

fn handle_frame(
    frame: ServerFrame,
    streams: &mut HashMap<u32, StreamState>,
    scenario_hists: &[Histogram],
    epoch: Instant,
    result: &mut WorkerResult,
) {
    match frame {
        ServerFrame::Opened { .. } => result.opens_acked += 1,
        ServerFrame::Emit {
            stream_id,
            count,
            outputs,
            ..
        } => {
            result.emissions_received += u64::from(count);
            let now_ns = nanos_of(epoch.elapsed());
            let Some(state) = streams.get_mut(&stream_id) else {
                result.errors.unexpected_emissions += u64::from(count);
                return;
            };
            let mut remaining = u64::from(count);
            while remaining > 0 {
                let Some(front) = state.fifo.front_mut() else {
                    result.errors.unexpected_emissions += remaining;
                    break;
                };
                let take = front.1.min(remaining);
                for _ in 0..take {
                    scenario_hists[state.scenario].record(now_ns.saturating_sub(front.0));
                }
                front.1 -= take;
                remaining -= take;
                if front.1 == 0 {
                    state.fifo.pop_front();
                }
            }
            if let Some((_, _, recorded)) = state.verify.as_mut() {
                recorded.extend_from_slice(&outputs);
            }
        }
        ServerFrame::Closed { stream_id, .. } => {
            result.closes_seen += 1;
            if let Some(state) = streams.remove(&stream_id) {
                let owed: u64 = state.fifo.iter().map(|&(_, n)| n).sum();
                result.errors.missing_emissions += owed;
                if let Some((session, segment, outputs)) = state.verify {
                    result
                        .verify_outputs
                        .insert((session, segment), (state.model, outputs));
                }
            }
        }
        ServerFrame::Error { .. } => result.errors.protocol += 1,
        _ => {}
    }
}
