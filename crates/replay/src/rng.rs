//! The harness's own tiny deterministic RNG.
//!
//! Replay must be exact: the same seed has to produce the same session
//! population, the same waveforms and the same schedule on every machine
//! and every run, forever. Rather than tie that guarantee to an external
//! generator's stream stability, the harness hand-rolls SplitMix64 — a
//! dozen lines, full 64-bit state, well-studied constants — and derives
//! every per-session stream from it by key-splitting, so reordering one
//! draw can never shift another session's world.

/// SplitMix64: one `u64` of state, one round of mixing per draw.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A generator for a named sub-stream: mixes `key` into `seed` so each
    /// (seed, key) pair yields an independent, order-insensitive stream.
    pub fn keyed(seed: u64, key: u64) -> Self {
        let mut g = Self::new(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // One warmup draw decorrelates near-equal keys.
        g.next_u64();
        g
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`, with 53 bits of mantissa.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift: unbiased enough for workload synthesis and
        // branch-free (the bias is < 2^-32 for the ranges used here).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Approximately standard-normal: the sum of four uniforms, centred
    /// and scaled to unit variance (Irwin–Hall). Plenty for ragged session
    /// lengths; nobody is doing cryptography with session durations.
    pub fn approx_normal(&mut self) -> f64 {
        let s = self.unit() + self.unit() + self.unit() + self.unit();
        (s - 2.0) * (12.0f64 / 4.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keyed_streams_are_independent_of_draw_order() {
        let mut k1 = SplitMix64::keyed(7, 100);
        let first = k1.next_u64();
        // Draw from another keyed stream in between; k1's continuation
        // must be unaffected (each stream owns its state).
        let mut k2 = SplitMix64::keyed(7, 101);
        let _ = k2.next_u64();
        let mut k1_again = SplitMix64::keyed(7, 100);
        assert_eq!(k1_again.next_u64(), first);
        assert_ne!(SplitMix64::keyed(7, 100).next_u64(), k2.next_u64());
    }

    #[test]
    fn unit_and_below_stay_in_range() {
        let mut g = SplitMix64::new(1);
        for _ in 0..1000 {
            let u = g.unit();
            assert!((0.0..1.0).contains(&u));
            let n = g.below(17);
            assert!(n < 17);
        }
        assert_eq!(g.below(0), 0);
    }

    #[test]
    fn approx_normal_is_roughly_centred() {
        let mut g = SplitMix64::new(9);
        let n = 10_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = g.approx_normal();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }
}
