//! The ground-truth side of the harness: loaded zoo artifacts, their
//! structural emission cadence, and solo-session replay.
//!
//! The driver needs to know, per model, how many emissions the daemon
//! owes for a burst of timesteps — that cadence is structural (a causal
//! plan warms up over its receptive field, then emits once per step),
//! not input-dependent, so the table is built once per model by pushing
//! zeros through a private session and counting. Verification replays a
//! sampled session's exact inputs through a fresh solo session per
//! segment and demands the daemon's outputs match: bit-exact for int8
//! plans (integer arithmetic has one right answer), ≤ 1e-5 absolute for
//! f32 (the daemon computes the same graph in the same order, but keep a
//! guard band for future kernel reassociation).

use crate::workload::ModelSpec;
use pit_infer::quant::QuantizedSession;
use pit_infer::{PlanArtifact, Session, ZooManifest};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Absolute tolerance for f32 model verification.
pub const F32_TOLERANCE: f32 = 1e-5;

enum LoadedPlan {
    F32(Arc<pit_infer::InferencePlan>),
    I8(Arc<pit_infer::quant::QuantizedPlan>),
}

/// One zoo model with its oracle machinery.
pub struct OracleModel {
    /// Registry name (what OPEN selects).
    pub name: String,
    /// `"f32"` or `"i8"`.
    pub kind: &'static str,
    /// Input channels per timestep.
    pub channels: usize,
    /// Output vector width per emission.
    pub output_dim: usize,
    plan: LoadedPlan,
    /// `cum[n]` = emissions a fresh stream has produced after `n` steps.
    cum: Vec<u64>,
}

impl OracleModel {
    fn fresh_session(&self) -> OracleSession {
        match &self.plan {
            LoadedPlan::F32(p) => OracleSession::F32(Session::new(Arc::clone(p))),
            LoadedPlan::I8(p) => OracleSession::I8(QuantizedSession::new(Arc::clone(p))),
        }
    }
}

enum OracleSession {
    F32(Session),
    I8(QuantizedSession),
}

impl OracleSession {
    fn push(&mut self, sample: &[f32]) -> Option<Vec<f32>> {
        match self {
            OracleSession::F32(s) => s.push(sample),
            OracleSession::I8(s) => s.push(sample),
        }
    }
}

/// All zoo models loaded for a run, indexed the way workload events
/// index them.
pub struct ModelTable {
    models: Vec<OracleModel>,
}

impl ModelTable {
    /// Loads every artifact a `pit-zoo/1` manifest names (rooted at
    /// `base`, the manifest's directory) and probes each model's
    /// emission cadence out to `max_steps` timesteps.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable or malformed artifacts, or a
    /// manifest/artifact disagreement on channels.
    pub fn load(manifest: &ZooManifest, base: &Path, max_steps: usize) -> Result<Self, String> {
        let mut models = Vec::with_capacity(manifest.models.len());
        for entry in &manifest.models {
            let artifact = PlanArtifact::load(&entry.artifact_path(base))?;
            if artifact.input_channels() != entry.input_channels {
                return Err(format!(
                    "model '{}': manifest says {} input channels, artifact has {}",
                    entry.name,
                    entry.input_channels,
                    artifact.input_channels()
                ));
            }
            let (plan, kind) = match artifact {
                PlanArtifact::F32(p) => (LoadedPlan::F32(Arc::new(p)), "f32"),
                PlanArtifact::I8(p) => (LoadedPlan::I8(Arc::new(p)), "i8"),
            };
            let mut model = OracleModel {
                name: entry.name.clone(),
                kind,
                channels: entry.input_channels,
                output_dim: entry.output_dim,
                plan,
                cum: Vec::new(),
            };
            model.cum = probe_cadence(&model, max_steps);
            models.push(model);
        }
        Ok(Self { models })
    }

    /// The models as workload specs, in manifest order (the index space
    /// shared with workload events).
    pub fn specs(&self) -> Vec<ModelSpec> {
        self.models
            .iter()
            .map(|m| ModelSpec {
                name: m.name.clone(),
                channels: m.channels,
            })
            .collect()
    }

    /// The model at workload index `idx`.
    pub fn get(&self, idx: usize) -> &OracleModel {
        &self.models[idx]
    }

    /// Models loaded.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the table is empty (it never is after a successful load —
    /// manifests require at least one model).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Emissions a fresh stream of model `idx` owes for steps
    /// `(from, to]` — what one PUSH advancing a stream from `from` to
    /// `to` total steps must eventually produce.
    pub fn expected_emissions(&self, idx: usize, from: usize, to: usize) -> u64 {
        let cum = &self.models[idx].cum;
        let at = |n: usize| -> u64 {
            if n < cum.len() {
                cum[n]
            } else {
                // Past the probed horizon the cadence is steady-state:
                // one emission per step.
                cum[cum.len() - 1] + (n - (cum.len() - 1)) as u64
            }
        };
        at(to) - at(from)
    }

    /// Replays one segment's inputs through a fresh solo session and
    /// returns the concatenated emissions.
    pub fn replay_segment(&self, idx: usize, inputs: &[f32]) -> Vec<f32> {
        let model = &self.models[idx];
        let mut session = model.fresh_session();
        let mut out = Vec::new();
        for sample in inputs.chunks_exact(model.channels) {
            if let Some(v) = session.push(sample) {
                out.extend_from_slice(&v);
            }
        }
        out
    }

    /// Compares the daemon's outputs for one segment against the solo
    /// replay: `None` when they agree (bit-exact for i8, ≤
    /// [`F32_TOLERANCE`] for f32), else a description of the first
    /// divergence.
    pub fn check_segment(&self, idx: usize, inputs: &[f32], served: &[f32]) -> Option<String> {
        let model = &self.models[idx];
        let expect = self.replay_segment(idx, inputs);
        if expect.len() != served.len() {
            return Some(format!(
                "model '{}': oracle emitted {} values, daemon {}",
                model.name,
                expect.len(),
                served.len()
            ));
        }
        for (i, (&want, &got)) in expect.iter().zip(served).enumerate() {
            let ok = match model.kind {
                "i8" => want.to_bits() == got.to_bits(),
                _ => (want - got).abs() <= F32_TOLERANCE,
            };
            if !ok {
                return Some(format!(
                    "model '{}' ({}): value {i} diverges: oracle {want:e}, daemon {got:e}",
                    model.name, model.kind
                ));
            }
        }
        None
    }

    /// Median-of-three nanoseconds per solo f32 inference step — the
    /// machine-speed anchor for normalised bench comparison (`_f32/step`
    /// matches the bench harness's anchor rule). `None` when the zoo has
    /// no f32 model.
    pub fn anchor_ns_per_step(&self) -> Option<f64> {
        let (idx, model) = self
            .models
            .iter()
            .enumerate()
            .find(|(_, m)| m.kind == "f32")?;
        let steps = 2_000usize;
        let zeros = vec![0.0f32; model.channels];
        let mut runs = [0f64; 3];
        for r in runs.iter_mut() {
            let mut session = self.models[idx].fresh_session();
            let start = Instant::now();
            for _ in 0..steps {
                std::hint::black_box(session.push(std::hint::black_box(&zeros)));
            }
            *r = start.elapsed().as_nanos() as f64 / steps as f64;
        }
        runs.sort_by(f64::total_cmp);
        Some(runs[1])
    }
}

/// Pushes `max_steps` zero timesteps through a fresh session and records
/// the cumulative emission count after each step.
fn probe_cadence(model: &OracleModel, max_steps: usize) -> Vec<u64> {
    let mut session = model.fresh_session();
    let zeros = vec![0.0f32; model.channels];
    let mut cum = Vec::with_capacity(max_steps + 1);
    cum.push(0u64);
    let mut total = 0u64;
    for _ in 0..max_steps {
        if session.push(&zeros).is_some() {
            total += 1;
        }
        cum.push(total);
    }
    cum
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_infer::quant::QuantizedPlan;
    use pit_infer::{compile_temponet, InferencePlan};
    use pit_models::{TempoNet, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use pit_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const C: usize = 4;

    fn plan(seed: u64) -> InferencePlan {
        let cfg = TempoNetConfig::scaled(8, 64);
        let mut rng = StdRng::seed_from_u64(seed);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        compile_temponet(&net)
    }

    fn table(seed: u64) -> (ModelTable, tempdir::TempDir) {
        let dir = tempdir::TempDir::new();
        let p = plan(seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let x = init::uniform(&mut rng, &[1, C, 64], 1.0);
        let q = QuantizedPlan::quantize(&p, std::slice::from_ref(&x)).unwrap();
        std::fs::write(dir.path().join("m-f32.pit2.json"), p.to_artifact_string()).unwrap();
        std::fs::write(dir.path().join("m-i8.pit2.json"), q.to_artifact_string()).unwrap();
        let manifest = ZooManifest::new(
            p.name().to_string(),
            vec![
                zoo_entry(p.name(), "m-f32.pit2.json", "f32", &p),
                zoo_entry(q.name(), "m-i8.pit2.json", "i8", &p),
            ],
        )
        .unwrap();
        let t = ModelTable::load(&manifest, dir.path(), 128).unwrap();
        (t, dir)
    }

    fn zoo_entry(name: &str, file: &str, kind: &str, p: &InferencePlan) -> pit_infer::ZooEntry {
        pit_infer::ZooEntry {
            name: name.to_string(),
            path: file.to_string(),
            kind: kind.to_string(),
            seed: 1,
            lambda: 0.0,
            params: 0,
            receptive_field: p.receptive_field(),
            val_loss: 0.0,
            error_bound: 0.0,
            input_channels: p.input_channels(),
            output_dim: p.output_dim(),
        }
    }

    // A throwaway temp dir; std has no tempdir, so lean on the target dir.
    mod tempdir {
        pub struct TempDir(std::path::PathBuf);
        impl TempDir {
            pub fn new() -> Self {
                let dir = std::env::temp_dir().join(format!(
                    "pit-replay-oracle-{}-{:?}",
                    std::process::id(),
                    std::thread::current().id()
                ));
                std::fs::create_dir_all(&dir).unwrap();
                Self(dir)
            }
            pub fn path(&self) -> &std::path::Path {
                &self.0
            }
        }
        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn cadence_table_matches_receptive_field_warmup() {
        let (t, _dir) = table(31);
        // No emissions until the plan warms up, then one per step.
        assert_eq!(t.expected_emissions(0, 0, 1), 0);
        let total = t.expected_emissions(0, 0, 128);
        assert!(total > 0 && total < 128, "total={total}");
        // Steady state: exactly one emission per step, including past the
        // probed horizon.
        assert_eq!(t.expected_emissions(0, 127, 128), 1);
        assert_eq!(t.expected_emissions(0, 128, 130), 2);
        assert_eq!(t.expected_emissions(0, 500, 510), 10);
        // Additivity over splits.
        assert_eq!(
            t.expected_emissions(0, 0, 64) + t.expected_emissions(0, 64, 128),
            t.expected_emissions(0, 0, 128)
        );
    }

    #[test]
    fn replay_check_accepts_itself_and_flags_tampering() {
        let (t, _dir) = table(32);
        let mut rng = SplitMixLocal(99);
        let inputs: Vec<f32> = (0..64 * C).map(|_| rng.next_f32()).collect();
        for idx in 0..t.len() {
            let served = t.replay_segment(idx, &inputs);
            assert!(!served.is_empty());
            assert!(t.check_segment(idx, &inputs, &served).is_none());
            // Tamper with one value beyond tolerance: must be caught.
            let mut bad = served.clone();
            bad[served.len() / 2] += 1e-3;
            assert!(t.check_segment(idx, &inputs, &bad).is_some());
            // Wrong length: caught.
            assert!(t.check_segment(idx, &inputs, &served[1..]).is_some());
        }
    }

    #[test]
    fn anchor_timing_is_positive() {
        let (t, _dir) = table(33);
        let ns = t.anchor_ns_per_step().expect("zoo has an f32 model");
        assert!(ns > 0.0);
    }

    struct SplitMixLocal(u64);
    impl SplitMixLocal {
        fn next_f32(&mut self) -> f32 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        }
    }
}
