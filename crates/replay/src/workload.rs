//! Synthetic user-session populations with realistic arrival shape.
//!
//! The generator turns a seed plus a handful of scenario knobs into a
//! fully materialised, per-connection event script: who connects when,
//! which model each stream selects, how many timesteps each session
//! pushes in which bursts, who abandons mid-session and who reconnects.
//! Everything — arrival times, waveforms, model mix, abandonment — comes
//! from keyed [`SplitMix64`] streams, so one
//! `(seed, config)` pair is one exact, replayable world.
//!
//! ## Scenario shapes
//!
//! Two built-in scenarios mirror the paper's dataset families:
//!
//! * **vitals** — PPG-Dalia-like wearable vitals: slow sessions (12 ms
//!   per timestep), smooth two-tone waveforms with a drifting baseline,
//!   a daytime diurnal arrival peak.
//! * **polyphonic** — Nottingham-like note streams: faster cadence
//!   (8 ms per timestep), piecewise-constant level patterns held for a
//!   few steps at a time, an evening arrival peak.
//!
//! ## Open-loop timeline
//!
//! Sessions are assigned round-robin to *lanes* (`connections ×
//! lanes_per_conn` of them); a lane plays its sessions back-to-back, so
//! the lane count bounds peak concurrency while the diurnal curve shapes
//! how much of that bound is in use at once. Every event carries an
//! absolute intended send time; the driver schedules against those
//! times and measures latency from them, so a stalled server inflates
//! the recorded tail instead of silently slowing the load down
//! (coordinated omission).

use crate::rng::SplitMix64;

/// A model the workload can route streams to (one `pit-zoo/1` entry).
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Registry name sent in the OPEN frame.
    pub name: String,
    /// Input channels per timestep.
    pub channels: usize,
}

/// One workload scenario: an arrival shape plus a signal family.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (report key).
    pub name: &'static str,
    /// Share of sessions drawn from this scenario (weights are
    /// normalised over all scenarios).
    pub weight: f64,
    /// Microseconds of virtual time per pushed timestep.
    pub step_interval_us: u64,
    /// Diurnal modulation depth in `[0, 1)`: arrival rate swings between
    /// `1 - amp` and `1 + amp` times the mean over the run.
    pub diurnal_amp: f64,
    /// Phase of the arrival peak as a fraction of the run in `[0, 1)`.
    pub diurnal_peak: f64,
    /// Mean timesteps per session (before abandonment).
    pub mean_steps: f64,
    /// Timesteps batched into one PUSH frame.
    pub burst_steps: usize,
}

/// The built-in scenario mix.
pub fn default_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "vitals",
            weight: 0.6,
            step_interval_us: 12_000,
            diurnal_amp: 0.6,
            diurnal_peak: 0.35,
            mean_steps: 32.0,
            burst_steps: 8,
        },
        Scenario {
            name: "polyphonic",
            weight: 0.4,
            step_interval_us: 8_000,
            diurnal_amp: 0.8,
            diurnal_peak: 0.8,
            mean_steps: 32.0,
            burst_steps: 8,
        },
    ]
}

/// Everything that determines the generated population.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed: same seed, same world.
    pub seed: u64,
    /// User sessions to synthesise.
    pub sessions: usize,
    /// Worker connections the driver will open.
    pub connections: usize,
    /// Concurrent session lanes multiplexed onto each connection.
    pub lanes_per_conn: usize,
    /// Virtual run length (µs) the diurnal curve spans. This is also the
    /// wall-clock send window: the driver plays events in real time.
    pub duration_us: u64,
    /// Multiplier on every scenario's step interval (< 1 compresses
    /// time for fast test presets).
    pub time_scale: f64,
    /// Probability a session is sampled for bit-exact oracle
    /// verification against a solo replay.
    pub verify_fraction: f64,
    /// Probability a session abandons mid-run (truncated steps).
    pub abandon_p: f64,
    /// Probability a session drops and reconnects once, resuming as a
    /// fresh stream (server state resets — the oracle knows this).
    pub reconnect_p: f64,
}

impl WorkloadConfig {
    /// The CI-scale preset: ≥10k sessions over ≥256 concurrent lanes in
    /// a ten-second window.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            sessions: 10_240,
            connections: 64,
            lanes_per_conn: 8,
            duration_us: 10_000_000,
            time_scale: 1.0,
            verify_fraction: 0.003,
            abandon_p: 0.07,
            reconnect_p: 0.12,
        }
    }

    /// The paper-scale preset: 100k sessions over 1024 lanes in a
    /// one-minute window.
    pub fn full(seed: u64) -> Self {
        Self {
            sessions: 102_400,
            connections: 128,
            duration_us: 60_000_000,
            ..Self::quick(seed)
        }
    }

    /// A seconds-long preset for integration tests: few hundred
    /// sessions, compressed timesteps.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            sessions: 192,
            connections: 8,
            lanes_per_conn: 4,
            duration_us: 1_500_000,
            time_scale: 0.25,
            verify_fraction: 0.08,
            abandon_p: 0.07,
            reconnect_p: 0.12,
        }
    }
}

/// One scheduled wire action on a connection.
#[derive(Debug, Clone)]
pub struct Event {
    /// Intended send time, µs after the run epoch.
    pub at_us: u64,
    /// What to send.
    pub kind: EventKind,
}

/// The action behind an [`Event`].
#[derive(Debug, Clone)]
pub enum EventKind {
    /// OPEN a stream (one session segment) selecting `model`.
    Open {
        /// Connection-scoped stream id.
        stream: u32,
        /// Index into the model list.
        model: usize,
        /// Index into the scenario list.
        scenario: usize,
        /// Workload-global session index.
        session: u32,
        /// Segment ordinal within the session (0, then 1 after a
        /// reconnect).
        segment: u32,
        /// Whether the driver must record this segment's outputs for
        /// oracle verification.
        verify: bool,
    },
    /// PUSH one burst of timesteps (`samples.len() / channels` steps).
    Push {
        /// Connection-scoped stream id.
        stream: u32,
        /// Interleaved `steps × channels` input values.
        samples: Vec<f32>,
    },
    /// CLOSE the stream (ends the segment).
    Close {
        /// Connection-scoped stream id.
        stream: u32,
    },
}

/// The event script for one driver connection.
#[derive(Debug, Clone, Default)]
pub struct ConnScript {
    /// Events sorted by `at_us` (ties keep generation order).
    pub events: Vec<Event>,
    /// Stream segments this connection opens (== CLOSE count).
    pub segments: u64,
}

/// A fully materialised population: per-connection scripts plus the
/// totals the reconciliation gate checks against server counters.
#[derive(Debug, Clone)]
pub struct Workload {
    /// One script per driver connection.
    pub conns: Vec<ConnScript>,
    /// The scenario list events index into.
    pub scenarios: Vec<Scenario>,
    /// The model list events index into.
    pub models: Vec<ModelSpec>,
    /// Sessions synthesised.
    pub total_sessions: u64,
    /// Stream segments (OPEN frames) across all connections.
    pub total_segments: u64,
    /// Timesteps (PUSH payload rows) across all connections.
    pub total_steps: u64,
    /// Sessions sampled for oracle verification.
    pub verify_sessions: u64,
    /// Last intended send time in the schedule, µs after epoch.
    pub end_us: u64,
}

/// Per-channel waveform state for one session. The generator persists
/// across a session's segments (a reconnecting user keeps emitting the
/// same physical signal), while the server-side model state restarts
/// per segment — exactly what the oracle replays.
#[derive(Debug, Clone)]
struct WaveformGen {
    scenario: usize,
    rng: SplitMix64,
    t: u64,
    /// vitals: per-channel drifting baseline; polyphonic: held level.
    state: Vec<f32>,
    /// polyphonic: steps left before the held level changes.
    hold: u32,
    /// vitals: per-channel phase offsets.
    phase: Vec<f32>,
}

impl WaveformGen {
    fn new(scenario: usize, channels: usize, rng: SplitMix64) -> Self {
        let mut g = Self {
            scenario,
            rng,
            t: 0,
            state: vec![0.0; channels],
            hold: 0,
            phase: Vec::with_capacity(channels),
        };
        for c in 0..channels {
            g.phase
                .push(g.rng.range_f64(0.0, std::f64::consts::TAU) as f32);
            g.state[c] = g.rng.range_f64(-0.5, 0.5) as f32;
        }
        g
    }

    /// Appends one timestep (`channels` values) to `out`.
    fn step(&mut self, out: &mut Vec<f32>) {
        let channels = self.state.len();
        if self.scenario == 0 {
            // Vitals: two incommensurate tones over a random-walk
            // baseline, like a pulse plus respiration over sensor drift.
            for c in 0..channels {
                let t = self.t as f32;
                let p = self.phase[c];
                self.state[c] += self.rng.range_f64(-0.02, 0.02) as f32;
                self.state[c] = self.state[c].clamp(-0.6, 0.6);
                let v = 0.5 * (0.11 * t + p).sin() + 0.2 * (0.031 * t + 1.7 * p).sin();
                out.push((self.state[c] + v).clamp(-1.0, 1.0));
            }
        } else {
            // Polyphonic: piecewise-constant levels held ~8 steps, a new
            // chord each change.
            if self.hold == 0 {
                self.hold = 4 + self.rng.below(9) as u32;
                for s in self.state.iter_mut() {
                    *s = (self.rng.below(8) as f32) / 4.0 - 0.875;
                }
            }
            self.hold -= 1;
            out.extend_from_slice(&self.state);
        }
        self.t += 1;
    }
}

// Key-space tags so each per-session random stream is independent.
const KEY_SHAPE: u64 = 0x01;
const KEY_WAVE: u64 = 0x02;
const KEY_ARRIVAL: u64 = 0x03;

/// Inverse-CDF sampler for a scenario's diurnal arrival curve: rate is
/// `1 + amp·cos(2π(x - peak))` over the unit run; 256 piecewise-linear
/// segments of the cumulative integral map a uniform draw to an arrival
/// fraction.
struct ArrivalCurve {
    cum: Vec<f64>,
}

impl ArrivalCurve {
    const BINS: usize = 256;

    fn new(scenario: &Scenario) -> Self {
        let mut cum = Vec::with_capacity(Self::BINS + 1);
        cum.push(0.0);
        let mut acc = 0.0;
        for i in 0..Self::BINS {
            let x = (i as f64 + 0.5) / Self::BINS as f64;
            let rate = 1.0
                + scenario.diurnal_amp
                    * (std::f64::consts::TAU * (x - scenario.diurnal_peak)).cos();
            acc += rate.max(0.0);
            cum.push(acc);
        }
        for v in cum.iter_mut() {
            *v /= acc;
        }
        Self { cum }
    }

    /// Maps a uniform draw in `[0, 1)` to an arrival fraction of the run.
    fn sample(&self, u: f64) -> f64 {
        // Binary search for the segment containing u, then interpolate.
        let mut lo = 0usize;
        let mut hi = Self::BINS;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cum[mid] <= u {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span = self.cum[lo + 1] - self.cum[lo];
        let frac = if span > 0.0 {
            (u - self.cum[lo]) / span
        } else {
            0.0
        };
        (lo as f64 + frac) / Self::BINS as f64
    }
}

/// Synthesises the full population for `config` over `models`.
///
/// # Panics
///
/// Panics when `models` or the built-in scenario list is empty, or when
/// `connections`/`lanes_per_conn` is zero — these are driver
/// configuration bugs, not data-dependent conditions.
pub fn generate(config: &WorkloadConfig, models: &[ModelSpec]) -> Workload {
    let scenarios = default_scenarios();
    assert!(!models.is_empty(), "workload needs at least one model");
    assert!(config.connections > 0 && config.lanes_per_conn > 0);

    let curves: Vec<ArrivalCurve> = scenarios.iter().map(ArrivalCurve::new).collect();
    let weight_sum: f64 = scenarios.iter().map(|s| s.weight).sum();

    let lanes = config.connections * config.lanes_per_conn;
    // Per-lane cursor: sessions on a lane play back-to-back, so a
    // session's start is its diurnal arrival or the lane becoming free,
    // whichever is later.
    let mut lane_free_us = vec![0u64; lanes];
    let mut conns: Vec<ConnScript> = vec![ConnScript::default(); config.connections];
    let mut next_stream: Vec<u32> = vec![0; config.connections];

    let mut total_segments = 0u64;
    let mut total_steps = 0u64;
    let mut verify_sessions = 0u64;
    let mut end_us = 0u64;

    for s in 0..config.sessions {
        let sid = s as u64;
        let mut shape = SplitMix64::keyed(config.seed ^ (KEY_SHAPE << 56), sid);

        // Scenario: weighted pick.
        let mut pick = shape.unit() * weight_sum;
        let mut scenario_idx = scenarios.len() - 1;
        for (i, sc) in scenarios.iter().enumerate() {
            if pick < sc.weight {
                scenario_idx = i;
                break;
            }
            pick -= sc.weight;
        }
        let scenario = &scenarios[scenario_idx];
        let model_idx = shape.below(models.len() as u64) as usize;
        let channels = models[model_idx].channels;

        // Ragged session length: log-normal-ish around the scenario mean,
        // clamped to at least one burst.
        let z = shape.approx_normal();
        let mut steps = (scenario.mean_steps * (0.35 * z).exp()).round() as usize;
        steps = steps.clamp(scenario.burst_steps, 4 * scenario.mean_steps as usize);
        // Abandonment truncates to a uniform prefix (still ≥ one burst).
        if shape.chance(config.abandon_p) {
            let keep = shape.range_f64(0.25, 0.75);
            steps = ((steps as f64 * keep) as usize).max(scenario.burst_steps);
        }
        // Round up to whole bursts so every PUSH carries a full burst.
        let bursts = steps.div_ceil(scenario.burst_steps);

        // A reconnecting session splits at a burst boundary into two
        // segments separated by a pause; each segment is a fresh stream.
        let split_after = if bursts >= 2 && shape.chance(config.reconnect_p) {
            Some(1 + shape.below(bursts as u64 - 1) as usize)
        } else {
            None
        };

        let verify =
            SplitMix64::keyed(config.seed ^ (KEY_WAVE << 56), sid).chance(config.verify_fraction);
        if verify {
            verify_sessions += 1;
        }

        // Arrival on the diurnal curve, then lane serialisation.
        let arrival_u = SplitMix64::keyed(config.seed ^ (KEY_ARRIVAL << 56), sid).unit();
        let arrival_us =
            (curves[scenario_idx].sample(arrival_u) * config.duration_us as f64) as u64;
        let lane = s % lanes;
        let conn = lane % config.connections;
        let start_us = arrival_us.max(lane_free_us[lane]);

        let step_us = ((scenario.step_interval_us as f64) * config.time_scale).max(1.0) as u64;
        let burst_us = step_us * scenario.burst_steps as u64;

        let mut wave = WaveformGen::new(
            scenario_idx,
            channels,
            SplitMix64::keyed(config.seed ^ (KEY_WAVE << 56), sid.wrapping_mul(3) + 1),
        );

        let script = &mut conns[conn];
        let mut t = start_us;
        let mut burst_in_segment = 0usize;
        let mut segment = 0u32;
        let mut stream = next_stream[conn];
        next_stream[conn] += 1;
        script.events.push(Event {
            at_us: t,
            kind: EventKind::Open {
                stream,
                model: model_idx,
                scenario: scenario_idx,
                session: s as u32,
                segment,
                verify,
            },
        });
        script.segments += 1;
        total_segments += 1;

        for b in 0..bursts {
            if split_after == Some(b) && burst_in_segment > 0 {
                // Drop and come back: close this stream, pause one to
                // three burst intervals, reopen as a new stream.
                script.events.push(Event {
                    at_us: t,
                    kind: EventKind::Close { stream },
                });
                t += burst_us * (1 + shape.below(3));
                segment += 1;
                stream = next_stream[conn];
                next_stream[conn] += 1;
                script.events.push(Event {
                    at_us: t,
                    kind: EventKind::Open {
                        stream,
                        model: model_idx,
                        scenario: scenario_idx,
                        session: s as u32,
                        segment,
                        verify,
                    },
                });
                script.segments += 1;
                total_segments += 1;
                burst_in_segment = 0;
            }
            let mut samples = Vec::with_capacity(scenario.burst_steps * channels);
            for _ in 0..scenario.burst_steps {
                wave.step(&mut samples);
            }
            script.events.push(Event {
                at_us: t,
                kind: EventKind::Push { stream, samples },
            });
            total_steps += scenario.burst_steps as u64;
            t += burst_us;
            burst_in_segment += 1;
        }
        script.events.push(Event {
            at_us: t,
            kind: EventKind::Close { stream },
        });
        lane_free_us[lane] = t;
        end_us = end_us.max(t);
    }

    for script in conns.iter_mut() {
        script.events.sort_by_key(|e| e.at_us);
    }

    Workload {
        conns,
        scenarios,
        models: models.to_vec(),
        total_sessions: config.sessions as u64,
        total_segments,
        total_steps,
        verify_sessions,
        end_us,
    }
}

/// Reconstructs the full per-segment input sequences for one session —
/// the oracle's view. Returns, per segment in order, the interleaved
/// `steps × channels` samples that were pushed on that segment's stream.
pub fn session_inputs(workload: &Workload, session: u32) -> Vec<Vec<f32>> {
    // Stream ids are connection-scoped, so first find the session's
    // segments (conn, stream) in segment order, then concatenate each
    // stream's pushes in event order.
    let mut segments: Vec<(usize, u32, u32)> = Vec::new();
    for (c, script) in workload.conns.iter().enumerate() {
        for ev in &script.events {
            if let EventKind::Open {
                stream,
                session: s,
                segment,
                ..
            } = ev.kind
            {
                if s == session {
                    segments.push((c, stream, segment));
                }
            }
        }
    }
    segments.sort_by_key(|&(_, _, seg)| seg);
    segments
        .into_iter()
        .map(|(c, stream, _)| {
            let mut inputs = Vec::new();
            for ev in &workload.conns[c].events {
                if let EventKind::Push {
                    stream: s,
                    ref samples,
                } = ev.kind
                {
                    if s == stream {
                        inputs.extend_from_slice(samples);
                    }
                }
            }
            inputs
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_models() -> Vec<ModelSpec> {
        vec![
            ModelSpec {
                name: "alpha".into(),
                channels: 2,
            },
            ModelSpec {
                name: "beta".into(),
                channels: 2,
            },
        ]
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = WorkloadConfig::smoke(11);
        let a = generate(&cfg, &two_models());
        let b = generate(&cfg, &two_models());
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.total_segments, b.total_segments);
        for (ca, cb) in a.conns.iter().zip(&b.conns) {
            assert_eq!(ca.events.len(), cb.events.len());
            for (ea, eb) in ca.events.iter().zip(&cb.events) {
                assert_eq!(ea.at_us, eb.at_us);
                match (&ea.kind, &eb.kind) {
                    (EventKind::Push { samples: sa, .. }, EventKind::Push { samples: sb, .. }) => {
                        assert_eq!(sa, sb)
                    }
                    (EventKind::Open { stream: sa, .. }, EventKind::Open { stream: sb, .. }) => {
                        assert_eq!(sa, sb)
                    }
                    (EventKind::Close { stream: sa }, EventKind::Close { stream: sb }) => {
                        assert_eq!(sa, sb)
                    }
                    other => panic!("event kinds diverge: {other:?}"),
                }
            }
        }
        let c = generate(&WorkloadConfig::smoke(12), &two_models());
        assert_ne!(a.total_steps, c.total_steps);
    }

    #[test]
    fn totals_reconcile_with_the_event_scripts() {
        let wl = generate(&WorkloadConfig::smoke(7), &two_models());
        let mut opens = 0u64;
        let mut closes = 0u64;
        let mut steps = 0u64;
        for (conn, script) in wl.conns.iter().enumerate() {
            let mut open_now: std::collections::HashSet<u32> = Default::default();
            for ev in &script.events {
                match &ev.kind {
                    EventKind::Open { stream, model, .. } => {
                        assert!(open_now.insert(*stream), "stream reused while open");
                        assert!(*model < wl.models.len());
                        opens += 1;
                    }
                    EventKind::Push { stream, samples } => {
                        assert!(open_now.contains(stream), "push on closed stream");
                        let ch = wl.models[0].channels;
                        assert_eq!(samples.len() % ch, 0);
                        assert!(samples.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
                        steps += (samples.len() / ch) as u64;
                    }
                    EventKind::Close { stream } => {
                        assert!(open_now.remove(stream), "close without open");
                        closes += 1;
                    }
                }
            }
            assert!(open_now.is_empty(), "conn {conn} leaves streams open");
            assert_eq!(script.segments, {
                script
                    .events
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Open { .. }))
                    .count() as u64
            });
        }
        assert_eq!(opens, wl.total_segments);
        assert_eq!(closes, wl.total_segments);
        assert_eq!(steps, wl.total_steps);
        assert!(wl.total_segments >= wl.total_sessions);
        assert!(
            wl.verify_sessions > 0,
            "smoke preset samples verify sessions"
        );
    }

    #[test]
    fn schedules_are_per_conn_monotonic_and_bounded() {
        let cfg = WorkloadConfig::smoke(3);
        let wl = generate(&cfg, &two_models());
        for script in &wl.conns {
            let mut last = 0u64;
            for ev in &script.events {
                assert!(ev.at_us >= last);
                last = ev.at_us;
            }
        }
        // Lanes serialise sessions, so the schedule can run past the
        // arrival window, but not unboundedly.
        assert!(wl.end_us >= cfg.duration_us / 2);
        assert!(wl.end_us < cfg.duration_us * 4, "end={}us", wl.end_us);
    }

    #[test]
    fn session_inputs_concatenate_segment_pushes() {
        let cfg = WorkloadConfig::smoke(21);
        let wl = generate(&cfg, &two_models());
        // Find a session that reconnected (two segments).
        let mut seen: std::collections::HashMap<u32, u32> = Default::default();
        for script in &wl.conns {
            for ev in &script.events {
                if let EventKind::Open {
                    session, segment, ..
                } = ev.kind
                {
                    let e = seen.entry(session).or_insert(0);
                    *e = (*e).max(segment + 1);
                }
            }
        }
        let (&split_session, _) = seen
            .iter()
            .find(|&(_, &segs)| segs == 2)
            .expect("smoke preset produces at least one reconnect");
        let inputs = session_inputs(&wl, split_session);
        assert_eq!(inputs.len(), 2);
        assert!(inputs.iter().all(|seg| !seg.is_empty()));
        let (&plain_session, _) = seen.iter().find(|&(_, &segs)| segs == 1).unwrap();
        assert_eq!(session_inputs(&wl, plain_session).len(), 1);
    }

    #[test]
    fn quick_preset_meets_the_acceptance_floor() {
        let cfg = WorkloadConfig::quick(1);
        assert!(cfg.sessions >= 10_000);
        assert!(cfg.connections * cfg.lanes_per_conn >= 256);
    }
}
