//! `pit-replay` — replay a synthetic user-session population against a
//! `pit-serve` daemon and emit a coordinated-omission-safe SLO report.
//!
//! ```text
//! pit-replay --zoo PATH [--quick | --full | --smoke] [--seed N]
//!            [--addr HOST:PORT --metrics-addr HOST:PORT]
//!            [--out report.json] [--bench-out bench.json]
//!
//!   --zoo PATH          pit-zoo/1 manifest (model mix + oracle weights)
//!   --quick             CI preset: 10k+ sessions over 512 lanes (default)
//!   --full              paper preset: 100k sessions over 1024 lanes
//!   --smoke             seconds-long test preset
//!   --seed N            master seed (default 42); same seed, same world
//!   --addr A            drive an already-running daemon at A ...
//!   --metrics-addr A    ... scraping its sidecar at A (both or neither)
//!   --out PATH          write the pit-replay-report/1 document here
//!   --bench-out PATH    write pit-bench/1 records (BENCH_replay.json shape)
//! ```
//!
//! Without `--addr` the harness boots the zoo in-process with an
//! ephemeral sidecar, which makes the exit status self-contained: 0 only
//! when the client-vs-server reconciliation is exact and every sampled
//! oracle check passes.

use pit_bench::perf::records_to_json;
use pit_replay::{run_replay, ReplayOptions};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pit-replay --zoo PATH [--quick|--full|--smoke] [--seed N] \
         [--addr A --metrics-addr A] [--out PATH] [--bench-out PATH]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut zoo: Option<PathBuf> = None;
    let mut preset = "quick";
    let mut seed = 42u64;
    let mut addr: Option<SocketAddr> = None;
    let mut metrics_addr: Option<SocketAddr> = None;
    let mut out: Option<PathBuf> = None;
    let mut bench_out: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--zoo" => match argv.next() {
                Some(p) => zoo = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--quick" => preset = "quick",
            "--full" => preset = "full",
            "--smoke" => preset = "smoke",
            "--seed" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => usage(),
            },
            "--addr" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(a) => addr = Some(a),
                None => usage(),
            },
            "--metrics-addr" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(a) => metrics_addr = Some(a),
                None => usage(),
            },
            "--out" => match argv.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--bench-out" => match argv.next() {
                Some(p) => bench_out = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("pit-replay: unknown argument '{other}'");
                usage();
            }
        }
    }
    let Some(zoo) = zoo else { usage() };
    let external = match (addr, metrics_addr) {
        (Some(a), Some(m)) => Some((a, m)),
        (None, None) => None,
        _ => {
            eprintln!("pit-replay: --addr and --metrics-addr go together");
            usage();
        }
    };

    let mut opts = match ReplayOptions::new(zoo, preset, seed) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pit-replay: {e}");
            return ExitCode::from(2);
        }
    };
    opts.external = external;

    let result = match run_replay(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pit-replay: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", result.summary);

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, result.report.render()) {
            eprintln!("pit-replay: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report: {}", path.display());
    }
    if let Some(path) = bench_out {
        let doc = records_to_json(&result.bench, preset);
        if let Err(e) = std::fs::write(&path, doc.render()) {
            eprintln!("pit-replay: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench records: {}", path.display());
    }

    if result.ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("pit-replay: reconciliation or oracle FAILED (see report)");
        ExitCode::FAILURE
    }
}
