//! The `pit-replay-report/1` document and the exact reconciliation gate.
//!
//! A replay run is only trustworthy if the client's books and the
//! daemon's books agree — not roughly, *exactly*. The daemon delivers
//! every stream's final emissions before its CLOSED frame, the sidecar
//! runs on HTTP connections that never touch the edge counters, and the
//! post-run settle barrier waits until the daemon is quiescent; given
//! those three, every check below is an equality, and any difference is
//! a lost frame, a double count, or a telemetry bug.

use crate::driver::DriverOutcome;
use crate::scrape::Scrape;
use crate::workload::Workload;
use pit_bench::perf::BenchRecord;
use pit_serve::hist::HistogramSnapshot;
use pit_tensor::json::Json;

/// Schema tag of the emitted report document.
pub const REPORT_SCHEMA: &str = "pit-replay-report/1";

/// One exact client-vs-server equality.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being reconciled.
    pub name: &'static str,
    /// The client-side (or workload-side) figure.
    pub expected: u64,
    /// The daemon-side figure (counter delta).
    pub actual: u64,
}

impl Check {
    /// Whether the two sides agree.
    pub fn ok(&self) -> bool {
        self.expected == self.actual
    }
}

/// The full reconciliation: every check plus the rolled-up verdict.
#[derive(Debug, Clone)]
pub struct Reconciliation {
    /// Individual equalities.
    pub checks: Vec<Check>,
    /// True when every check holds and the client books are clean.
    pub ok: bool,
}

/// Delta of a counter between two scrapes.
fn delta(before: &Scrape, after: &Scrape, selector: &str) -> u64 {
    after
        .counter(selector)
        .saturating_sub(before.counter(selector))
}

/// Builds the exact client-vs-server reconciliation from the workload
/// totals, the driver's books and the before/after counter scrapes.
pub fn reconcile(
    workload: &Workload,
    outcome: &DriverOutcome,
    before: &Scrape,
    after: &Scrape,
) -> Reconciliation {
    let checks = vec![
        Check {
            name: "segments == server streams_opened delta",
            expected: workload.total_segments,
            actual: delta(before, after, "pit_serve_streams_opened_total"),
        },
        Check {
            name: "steps == server timesteps delta",
            expected: workload.total_steps,
            actual: delta(before, after, "pit_serve_timesteps_total"),
        },
        Check {
            name: "client emissions == server emissions delta",
            expected: outcome.emissions_received,
            actual: delta(before, after, "pit_serve_emissions_total"),
        },
        Check {
            name: "worker connections == server connections delta",
            expected: workload.conns.len() as u64,
            actual: delta(before, after, "pit_serve_connections_total"),
        },
        Check {
            name: "opened acks == segments",
            expected: workload.total_segments,
            actual: outcome.opens_acked,
        },
        Check {
            name: "closed frames == segments",
            expected: workload.total_segments,
            actual: outcome.closes_seen,
        },
        Check {
            name: "server rejected no frames",
            expected: 0,
            actual: delta(before, after, "pit_serve_frames_rejected_total"),
        },
        Check {
            name: "server dropped no replies",
            expected: 0,
            actual: delta(before, after, "pit_serve_replies_dropped_total"),
        },
        Check {
            name: "server evicted no streams",
            expected: 0,
            actual: delta(before, after, "pit_serve_streams_evicted_total"),
        },
    ];
    let ok = checks.iter().all(Check::ok) && outcome.errors.is_clean();
    Reconciliation { checks, ok }
}

/// Everything the report assembles.
pub struct ReportInputs<'a> {
    /// Master seed of the run.
    pub seed: u64,
    /// Preset name (`quick` / `full` / `smoke`).
    pub preset: &'a str,
    /// The generated population.
    pub workload: &'a Workload,
    /// The driver's client-side books.
    pub outcome: &'a DriverOutcome,
    /// Sidecar scrape before any worker connected.
    pub before: &'a Scrape,
    /// Optional mid-run scrape (half the schedule in).
    pub mid: Option<&'a Scrape>,
    /// Post-settle scrape.
    pub after: &'a Scrape,
    /// The reconciliation over those books.
    pub reconciliation: &'a Reconciliation,
    /// Sessions the oracle replayed.
    pub oracle_sessions: u64,
    /// Segments the oracle replayed.
    pub oracle_segments: u64,
    /// Oracle divergences (empty = all bit-exact / in-tolerance).
    pub oracle_failures: &'a [String],
    /// Solo f32 ns/step (machine-speed anchor).
    pub anchor_ns_per_step: f64,
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn latency_obj(h: &HistogramSnapshot) -> Json {
    let count = h.count();
    let mean = if count == 0 {
        0.0
    } else {
        h.sum() as f64 / count as f64
    };
    Json::Obj(vec![
        ("count".into(), num(count)),
        ("p50_ns".into(), num(h.percentile(0.50))),
        ("p99_ns".into(), num(h.percentile(0.99))),
        ("p999_ns".into(), num(h.percentile(0.999))),
        ("mean_ns".into(), Json::Num(mean)),
    ])
}

fn server_obj(scrape: &Scrape) -> Json {
    let keys = [
        "pit_serve_connections_total",
        "pit_serve_streams_open",
        "pit_serve_streams_opened_total",
        "pit_serve_timesteps_total",
        "pit_serve_emissions_total",
        "pit_serve_waves_total",
        "pit_serve_frames_rejected_total",
        "pit_serve_replies_dropped_total",
    ];
    Json::Obj(
        keys.iter()
            .map(|&k| (k.to_string(), num(scrape.counter(k))))
            .collect(),
    )
}

/// Renders the full `pit-replay-report/1` document.
pub fn build_report(inputs: &ReportInputs<'_>) -> Json {
    let wl = inputs.workload;
    let out = inputs.outcome;
    let offered_rate = wl.total_steps as f64 / (wl.end_us.max(1) as f64 / 1e6);
    let achieved_rate = wl.total_steps as f64 / out.send_wall_seconds.max(1e-9);

    let scenarios = wl
        .scenarios
        .iter()
        .zip(&out.scenario_hists)
        .map(|(sc, h)| {
            Json::Obj(vec![
                ("name".into(), Json::Str(sc.name.into())),
                ("latency".into(), latency_obj(h)),
            ])
        })
        .collect();

    let checks = inputs
        .reconciliation
        .checks
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.into())),
                ("expected".into(), num(c.expected)),
                ("actual".into(), num(c.actual)),
                ("ok".into(), Json::Bool(c.ok())),
            ])
        })
        .collect();

    let mut server = vec![
        ("before".into(), server_obj(inputs.before)),
        ("after".into(), server_obj(inputs.after)),
    ];
    if let Some(mid) = inputs.mid {
        server.insert(
            1,
            (
                "mid".into(),
                Json::Obj(vec![
                    ("counters".into(), server_obj(mid)),
                    ("streams_open".into(), num(mid.stats.streams_open)),
                    ("connections_open".into(), num(mid.stats.connections_open)),
                ]),
            ),
        );
    }

    Json::Obj(vec![
        ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
        ("seed".into(), num(inputs.seed)),
        ("preset".into(), Json::Str(inputs.preset.into())),
        (
            "workload".into(),
            Json::Obj(vec![
                ("sessions".into(), num(wl.total_sessions)),
                ("segments".into(), num(wl.total_segments)),
                ("steps".into(), num(wl.total_steps)),
                ("connections".into(), num(wl.conns.len() as u64)),
                ("verify_sessions".into(), num(wl.verify_sessions)),
                ("schedule_us".into(), num(wl.end_us)),
            ]),
        ),
        ("scenarios".into(), Json::Arr(scenarios)),
        (
            "total".into(),
            Json::Obj(vec![
                ("latency".into(), latency_obj(&out.total_hist)),
                ("send_lag".into(), latency_obj(&out.send_lag)),
                ("offered_steps_per_sec".into(), Json::Num(offered_rate)),
                ("achieved_steps_per_sec".into(), Json::Num(achieved_rate)),
                ("emissions".into(), num(out.emissions_received)),
                ("send_wall_seconds".into(), Json::Num(out.send_wall_seconds)),
                (
                    "total_wall_seconds".into(),
                    Json::Num(out.total_wall_seconds),
                ),
            ]),
        ),
        (
            "errors".into(),
            Json::Obj(vec![
                ("transport".into(), num(out.errors.transport)),
                ("protocol".into(), num(out.errors.protocol)),
                (
                    "unexpected_emissions".into(),
                    num(out.errors.unexpected_emissions),
                ),
                (
                    "missing_emissions".into(),
                    num(out.errors.missing_emissions),
                ),
                ("drain_incomplete".into(), num(out.errors.drain_incomplete)),
            ]),
        ),
        (
            "oracle".into(),
            Json::Obj(vec![
                ("sessions_checked".into(), num(inputs.oracle_sessions)),
                ("segments_checked".into(), num(inputs.oracle_segments)),
                (
                    "failures".into(),
                    Json::Arr(
                        inputs
                            .oracle_failures
                            .iter()
                            .map(|f| Json::Str(f.clone()))
                            .collect(),
                    ),
                ),
                (
                    "verdict".into(),
                    Json::Str(
                        if inputs.oracle_failures.is_empty() {
                            "pass"
                        } else {
                            "fail"
                        }
                        .into(),
                    ),
                ),
            ]),
        ),
        ("server".into(), Json::Obj(server)),
        (
            "reconciliation".into(),
            Json::Obj(vec![
                ("checks".into(), Json::Arr(checks)),
                ("ok".into(), Json::Bool(inputs.reconciliation.ok)),
            ]),
        ),
        (
            "anchor_ns_per_step".into(),
            Json::Num(inputs.anchor_ns_per_step),
        ),
    ])
}

/// The run as `pit-bench/1` records, comparable against a committed
/// `BENCH_replay.json` with `bench_json compare --normalize`.
///
/// Only scheduler-stable figures are gated: the solo-step anchor (which
/// also pins machine speed for normalisation), per-scenario and total
/// p50, and the achieved step rate. Tail quantiles go in the report but
/// not the gate — p99.9 on a shared CI box is weather, not signal.
pub fn bench_records(inputs: &ReportInputs<'_>) -> Vec<BenchRecord> {
    let shape = inputs.preset.to_string();
    let mut records = vec![BenchRecord {
        suite: "replay".into(),
        op: "oracle_f32/step".into(),
        shape: "solo".into(),
        ns_per_iter: inputs.anchor_ns_per_step,
        throughput: 1e9 / inputs.anchor_ns_per_step.max(1e-9),
        throughput_unit: "iter/s".into(),
    }];
    let p50 = |h: &HistogramSnapshot| h.percentile(0.50) as f64;
    for (sc, h) in inputs
        .workload
        .scenarios
        .iter()
        .zip(&inputs.outcome.scenario_hists)
    {
        records.push(BenchRecord {
            suite: "replay".into(),
            op: format!("{}/p50", sc.name),
            shape: shape.clone(),
            ns_per_iter: p50(h),
            throughput: 1e9 / p50(h).max(1.0),
            throughput_unit: "iter/s".into(),
        });
    }
    records.push(BenchRecord {
        suite: "replay".into(),
        op: "total/p50".into(),
        shape: shape.clone(),
        ns_per_iter: p50(&inputs.outcome.total_hist),
        throughput: 1e9 / p50(&inputs.outcome.total_hist).max(1.0),
        throughput_unit: "iter/s".into(),
    });
    let achieved = inputs.workload.total_steps as f64 / inputs.outcome.send_wall_seconds.max(1e-9);
    records.push(BenchRecord {
        suite: "replay".into(),
        op: "total/rate".into(),
        shape,
        ns_per_iter: 1e9 / achieved.max(1e-9),
        throughput: achieved,
        throughput_unit: "step/s".into(),
    });
    records
}
