//! Reading the daemon's HTTP telemetry sidecar from the harness.
//!
//! Everything here goes over plain HTTP/1.1 on the sidecar — never over
//! the binary protocol — because sidecar connections do not count in the
//! daemon's edge `connections_total`. That keeps the reconciliation gate
//! exact: the connection-counter delta across a run equals the driver's
//! worker connections, with no scrape traffic to subtract.

use pit_serve::StatsSnapshot;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const HTTP_TIMEOUT: Duration = Duration::from_secs(10);

/// One point-in-time read of `/metrics` plus `/stats`.
#[derive(Debug, Clone)]
pub struct Scrape {
    /// Parsed Prometheus samples: full selector (name plus label set,
    /// e.g. `pit_serve_model_timesteps_total{model="m",kind="f32"}`)
    /// to value.
    pub samples: HashMap<String, f64>,
    /// The parsed `/stats` document.
    pub stats: StatsSnapshot,
}

impl Scrape {
    /// A sample by full selector; `None` when the exposition lacks it.
    pub fn metric(&self, selector: &str) -> Option<f64> {
        self.samples.get(selector).copied()
    }

    /// A counter by full selector, as the integer it is.
    pub fn counter(&self, selector: &str) -> u64 {
        self.metric(selector).unwrap_or(0.0) as u64
    }
}

/// One blocking HTTP/1.1 GET against the sidecar.
///
/// # Errors
///
/// Returns a message on connect/read failures or a non-200 status.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let stream = TcpStream::connect_timeout(&addr, HTTP_TIMEOUT)
        .map_err(|e| format!("sidecar {addr} unreachable: {e}"))?;
    stream
        .set_read_timeout(Some(HTTP_TIMEOUT))
        .map_err(|e| format!("sidecar socket: {e}"))?;
    stream
        .set_write_timeout(Some(HTTP_TIMEOUT))
        .map_err(|e| format!("sidecar socket: {e}"))?;
    let mut stream = stream;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: pit-replay\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("sidecar write: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("sidecar read: {e}"))?;
    let text = String::from_utf8(response).map_err(|_| "sidecar reply is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("sidecar reply has no header terminator")?;
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("sidecar reply has no status code")?;
    if status != 200 {
        return Err(format!("GET {path} returned {status}"));
    }
    Ok(body.to_string())
}

/// Parses a Prometheus text exposition into selector → value.
pub fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut samples = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                samples.insert(name.to_string(), v);
            }
        }
    }
    samples
}

/// Scrapes `/metrics` and `/stats` once.
///
/// # Errors
///
/// Returns a message on transport failures or malformed documents.
pub fn scrape(metrics_addr: SocketAddr) -> Result<Scrape, String> {
    let samples = parse_exposition(&http_get(metrics_addr, "/metrics")?);
    let stats = StatsSnapshot::from_json_str(&http_get(metrics_addr, "/stats")?)
        .map_err(|e| format!("/stats parse: {e}"))?;
    Ok(Scrape { samples, stats })
}

/// Polls `/stats` until the daemon reports itself settled with no open
/// streams and no open worker connections, then takes a final scrape.
/// This is the post-run quiescence barrier: after it, every counter is
/// final and the exact reconciliation can run.
///
/// # Errors
///
/// Returns a message when the daemon fails to settle within `timeout`.
pub fn settle(metrics_addr: SocketAddr, timeout: Duration) -> Result<Scrape, String> {
    let deadline = Instant::now() + timeout;
    loop {
        let snap = StatsSnapshot::from_json_str(&http_get(metrics_addr, "/stats")?)
            .map_err(|e| format!("/stats parse: {e}"))?;
        if snap.settled && snap.streams_open == 0 && snap.connections_open == 0 {
            return scrape(metrics_addr);
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "daemon never settled: settled={} streams_open={} connections_open={}",
                snap.settled, snap.streams_open, snap.connections_open
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parsing_skips_comments_and_keeps_labels() {
        let text = "# HELP pit_serve_waves_total waves\n\
                    # TYPE pit_serve_waves_total counter\n\
                    pit_serve_waves_total 41\n\
                    pit_serve_model_timesteps_total{model=\"m\",kind=\"f32\"} 7\n\
                    \n\
                    pit_serve_uptime_seconds 1.25\n";
        let samples = parse_exposition(text);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples["pit_serve_waves_total"], 41.0);
        assert_eq!(
            samples["pit_serve_model_timesteps_total{model=\"m\",kind=\"f32\"}"],
            7.0
        );
        assert_eq!(samples["pit_serve_uptime_seconds"], 1.25);
    }
}
