//! # pit-replay
//!
//! Replay-at-scale workload harness for `pit-serve`: synthesises a
//! user-session population from dataset-shaped scenarios, drives it
//! through a live multi-model daemon over the v4 binary protocol on an
//! open-loop absolute timeline, and emits a `pit-replay-report/1`
//! document whose client-side books reconcile *exactly* with the
//! daemon's `/metrics` counters.
//!
//! The pipeline, in module order:
//!
//! 1. [`rng`] — a hand-rolled keyed SplitMix64 so one seed is one
//!    exactly replayable world.
//! 2. [`workload`] — the population generator: diurnal arrivals, ragged
//!    session lengths, reconnects and abandonment, per-stream model mix
//!    over a `pit-zoo/1` manifest, fully materialised event scripts.
//! 3. [`oracle`] — loaded zoo artifacts, per-model emission cadence
//!    tables, and solo-session replay for bit-exact verification.
//! 4. [`driver`] — the open-loop driver: per-connection workers on a
//!    shared epoch, latency measured from *intended* send times
//!    (coordinated-omission-safe), per-scenario log-scale histograms.
//! 5. [`scrape`] — sidecar reads (`/metrics`, `/stats`) and the
//!    post-run settle barrier, all over HTTP so scrapes never disturb
//!    the edge connection counters.
//! 6. [`report`] — the report document, the exact reconciliation gate,
//!    and `pit-bench/1` records for the committed `BENCH_replay.json`
//!    baseline.
//!
//! [`run_replay`] wires the whole pipeline; the `pit-replay` binary and
//! the integration tests are thin shells over it.

pub mod driver;
pub mod oracle;
pub mod report;
pub mod rng;
pub mod scrape;
pub mod workload;

use driver::{DriverConfig, DriverOutcome};
use oracle::ModelTable;
use pit_bench::perf::BenchRecord;
use pit_infer::ZooManifest;
use pit_serve::{Server, ServerConfig};
use pit_tensor::json::Json;
use report::{build_report, reconcile, ReportInputs};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;
use workload::WorkloadConfig;

/// Steps beyond which every model is assumed in steady state (one
/// emission per step); sessions never exceed this.
const CADENCE_HORIZON: usize = 512;

/// One full replay run's configuration.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Path to the `pit-zoo/1` manifest (model mix and oracle weights).
    pub zoo_manifest: PathBuf,
    /// Preset label recorded in the report (`quick`/`full`/`smoke`).
    pub preset: String,
    /// The population to synthesise.
    pub workload: WorkloadConfig,
    /// Drive an already-running daemon at `(protocol, sidecar)` instead
    /// of booting one in-process.
    pub external: Option<(SocketAddr, SocketAddr)>,
    /// Post-schedule drain budget.
    pub drain_timeout: Duration,
}

impl ReplayOptions {
    /// Defaults for a preset name.
    pub fn new(zoo_manifest: PathBuf, preset: &str, seed: u64) -> Result<Self, String> {
        let workload = match preset {
            "quick" => WorkloadConfig::quick(seed),
            "full" => WorkloadConfig::full(seed),
            "smoke" => WorkloadConfig::smoke(seed),
            other => return Err(format!("unknown preset '{other}' (quick/full/smoke)")),
        };
        Ok(Self {
            zoo_manifest,
            preset: preset.to_string(),
            workload,
            external: None,
            drain_timeout: Duration::from_secs(60),
        })
    }
}

/// Everything a run produces.
pub struct ReplayResult {
    /// The rendered `pit-replay-report/1` document.
    pub report: Json,
    /// The run as `pit-bench/1` records (`BENCH_replay.json` shape).
    pub bench: Vec<BenchRecord>,
    /// Whether reconciliation held and the oracle passed.
    pub ok: bool,
    /// Human-readable one-screen summary.
    pub summary: String,
}

/// Runs the full pipeline: load zoo → synthesise population → (boot or
/// attach to) daemon → drive → settle → verify → reconcile → report.
///
/// # Errors
///
/// Returns a message on setup failures (unreadable zoo, daemon boot or
/// connect failures, sidecar unreachable, settle timeout). Load-time
/// *accounting* problems — lost emissions, oracle divergence — are not
/// errors: they come back in the report with `ok == false` so the
/// caller can still see the full picture.
pub fn run_replay(opts: &ReplayOptions) -> Result<ReplayResult, String> {
    let (manifest, base) = ZooManifest::load(&opts.zoo_manifest)?;
    let table = ModelTable::load(&manifest, &base, CADENCE_HORIZON)?;
    let workload = workload::generate(&opts.workload, &table.specs());

    // Boot in-process unless pointed at an external daemon. The server
    // needs headroom for every lane to hold a stream at once.
    let lanes = opts.workload.connections * opts.workload.lanes_per_conn;
    let mut in_process = None;
    let (addr, metrics_addr) = match opts.external {
        Some(pair) => pair,
        None => {
            let server = Server::bind_zoo(
                &opts.zoo_manifest,
                ServerConfig {
                    metrics_addr: Some("127.0.0.1:0".into()),
                    max_streams: (2 * lanes).max(4096),
                    idle_timeout: None,
                    ..ServerConfig::default()
                },
            )?;
            let handle = server.spawn();
            let pair = (
                handle.addr(),
                handle.metrics_addr().expect("sidecar was configured"),
            );
            in_process = Some(handle);
            pair
        }
    };

    let before = scrape::scrape(metrics_addr)?;

    // Mid-run scrape from a side thread at half the schedule (informative
    // only — it shows the population actually in flight).
    let mid_at = Duration::from_micros(workload.end_us / 2);
    let mid_handle = std::thread::spawn(move || {
        std::thread::sleep(mid_at);
        scrape::scrape(metrics_addr).ok()
    });

    let outcome = driver::drive(
        &workload,
        &table,
        &DriverConfig {
            addr,
            drain_timeout: opts.drain_timeout,
        },
    )?;

    let after = scrape::settle(metrics_addr, Duration::from_secs(30))?;
    let mid = mid_handle.join().ok().flatten();

    let (oracle_sessions, oracle_segments, oracle_failures) =
        run_oracle(&workload, &table, &outcome);

    let reconciliation = reconcile(&workload, &outcome, &before, &after);
    let anchor = table.anchor_ns_per_step().unwrap_or(0.0);
    let inputs = ReportInputs {
        seed: opts.workload.seed,
        preset: &opts.preset,
        workload: &workload,
        outcome: &outcome,
        before: &before,
        mid: mid.as_ref(),
        after: &after,
        reconciliation: &reconciliation,
        oracle_sessions,
        oracle_segments,
        oracle_failures: &oracle_failures,
        anchor_ns_per_step: anchor,
    };
    let report = build_report(&inputs);
    let bench = report::bench_records(&inputs);
    let ok = reconciliation.ok && oracle_failures.is_empty();
    let summary = render_summary(&inputs, ok);

    if let Some(server) = in_process {
        server.shutdown();
    }

    Ok(ReplayResult {
        report,
        bench,
        ok,
        summary,
    })
}

/// Replays every verify-sampled segment the driver recorded through a
/// fresh solo session and collects divergences.
fn run_oracle(
    workload: &workload::Workload,
    table: &ModelTable,
    outcome: &DriverOutcome,
) -> (u64, u64, Vec<String>) {
    let mut sessions: std::collections::HashSet<u32> = Default::default();
    let mut failures = Vec::new();
    let mut segments = 0u64;
    // Group recorded segments by session so inputs are reconstructed once.
    let mut keys: Vec<(u32, u32)> = outcome.verify_outputs.keys().copied().collect();
    keys.sort_unstable();
    let mut inputs_cache: Option<(u32, Vec<Vec<f32>>)> = None;
    for (session, segment) in keys {
        let (model, served) = &outcome.verify_outputs[&(session, segment)];
        if inputs_cache.as_ref().map(|(s, _)| *s) != Some(session) {
            inputs_cache = Some((session, workload::session_inputs(workload, session)));
        }
        let (_, inputs) = inputs_cache.as_ref().unwrap();
        let Some(segment_inputs) = inputs.get(segment as usize) else {
            failures.push(format!(
                "session {session} segment {segment}: no generated inputs"
            ));
            continue;
        };
        sessions.insert(session);
        segments += 1;
        if let Some(diff) = table.check_segment(*model, segment_inputs, served) {
            failures.push(format!("session {session} segment {segment}: {diff}"));
        }
    }
    (sessions.len() as u64, segments, failures)
}

fn render_summary(inputs: &ReportInputs<'_>, ok: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let wl = inputs.workload;
    let out = inputs.outcome;
    let _ = writeln!(
        s,
        "pit-replay [{}] seed {}: {} sessions / {} segments / {} steps over {} conns",
        inputs.preset,
        inputs.seed,
        wl.total_sessions,
        wl.total_segments,
        wl.total_steps,
        wl.conns.len()
    );
    for (sc, h) in wl.scenarios.iter().zip(&out.scenario_hists) {
        let _ = writeln!(
            s,
            "  {:<12} n={:<8} p50 {:>9} ns  p99 {:>9} ns  p99.9 {:>9} ns",
            sc.name,
            h.count(),
            h.percentile(0.50),
            h.percentile(0.99),
            h.percentile(0.999)
        );
    }
    let h = &out.total_hist;
    let _ = writeln!(
        s,
        "  {:<12} n={:<8} p50 {:>9} ns  p99 {:>9} ns  p99.9 {:>9} ns",
        "total",
        h.count(),
        h.percentile(0.50),
        h.percentile(0.99),
        h.percentile(0.999)
    );
    let _ = writeln!(
        s,
        "  offered {:.0} step/s, achieved {:.0} step/s; {} emissions; errors {}",
        wl.total_steps as f64 / (wl.end_us.max(1) as f64 / 1e6),
        wl.total_steps as f64 / out.send_wall_seconds.max(1e-9),
        out.emissions_received,
        out.errors.total()
    );
    let _ = writeln!(
        s,
        "  oracle: {} sessions / {} segments checked, {} failures",
        inputs.oracle_sessions,
        inputs.oracle_segments,
        inputs.oracle_failures.len()
    );
    let _ = writeln!(
        s,
        "  reconciliation: {}",
        if ok { "exact ✓" } else { "FAILED ✗" }
    );
    s
}
