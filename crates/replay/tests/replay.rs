//! End-to-end: a real zoo on disk, a real in-process daemon, a real
//! population driven through it, and the exact reconciliation plus
//! oracle verdicts that make the run trustworthy.

use pit_infer::quant::QuantizedPlan;
use pit_infer::{compile_temponet, InferencePlan, ZooEntry, ZooManifest};
use pit_models::{TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_replay::{run_replay, ReplayOptions};
use pit_tensor::init;
use pit_tensor::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

const C: usize = 4;

struct TempZoo {
    dir: PathBuf,
    manifest_path: PathBuf,
}

impl Drop for TempZoo {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn entry(name: &str, kind: &str, plan: &InferencePlan, error_bound: f32) -> ZooEntry {
    ZooEntry {
        name: name.to_string(),
        path: format!("{name}.pit2.json"),
        kind: kind.to_string(),
        seed: 1,
        lambda: 0.0,
        params: 0,
        receptive_field: plan.receptive_field(),
        val_loss: 0.0,
        error_bound,
        input_channels: plan.input_channels(),
        output_dim: plan.output_dim(),
    }
}

/// Writes a two-model zoo (one f32, one int8 of a second seed) the way
/// `pit-search` would, into a throwaway directory.
fn build_zoo(tag: &str) -> TempZoo {
    let dir = std::env::temp_dir().join(format!("pit-replay-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let cfg = TempoNetConfig::scaled(8, 64);
    let mut rng = StdRng::seed_from_u64(71);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = compile_temponet(&net);

    let mut rng = StdRng::seed_from_u64(72);
    let net2 = TempoNet::new(&mut rng, &cfg);
    net2.set_dilations(&cfg.hand_tuned_dilations());
    let plan2 = compile_temponet(&net2);
    let x = init::uniform(&mut rng, &[1, C, 64], 1.0);
    let qplan = QuantizedPlan::quantize(&plan2, std::slice::from_ref(&x)).unwrap();

    std::fs::write(
        dir.join(format!("{}.pit2.json", plan.name())),
        plan.to_artifact_string(),
    )
    .unwrap();
    std::fs::write(
        dir.join(format!("{}.pit2.json", qplan.name())),
        qplan.to_artifact_string(),
    )
    .unwrap();

    let manifest = ZooManifest::new(
        plan.name().to_string(),
        vec![
            entry(plan.name(), "f32", &plan, 0.0),
            entry(qplan.name(), "i8", &plan2, qplan.error_bound()),
        ],
    )
    .unwrap();
    let manifest_path = manifest.save(&dir).unwrap();
    TempZoo { dir, manifest_path }
}

fn get<'a>(doc: &'a Json, path: &[&str]) -> &'a Json {
    let mut node = doc;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    node
}

#[test]
fn smoke_population_reconciles_exactly_and_passes_the_oracle() {
    let zoo = build_zoo("smoke");
    let opts = ReplayOptions::new(zoo.manifest_path.clone(), "smoke", 7).unwrap();
    let result = run_replay(&opts).expect("run completes");
    println!("{}", result.summary);

    // The whole point: exit-status-grade success means exact
    // reconciliation and a clean oracle.
    assert!(result.ok, "run not ok:\n{}", result.report.render());

    // The report round-trips through the JSON layer.
    let text = result.report.render();
    let doc = Json::parse(&text).expect("report parses");
    assert_eq!(
        get(&doc, &["schema"]).as_str().unwrap(),
        "pit-replay-report/1"
    );
    assert_eq!(get(&doc, &["preset"]).as_str().unwrap(), "smoke");
    assert_eq!(get(&doc, &["oracle", "verdict"]).as_str().unwrap(), "pass");
    assert!(get(&doc, &["oracle", "sessions_checked"]).as_f64().unwrap() >= 1.0);
    assert!(matches!(
        get(&doc, &["reconciliation", "ok"]),
        Json::Bool(true)
    ));

    // Latency was actually recorded, for every scenario.
    let scenarios = get(&doc, &["scenarios"]).as_array().unwrap();
    assert_eq!(scenarios.len(), 2);
    for sc in scenarios {
        assert!(get(sc, &["latency", "count"]).as_f64().unwrap() > 0.0);
        assert!(get(sc, &["latency", "p50_ns"]).as_f64().unwrap() > 0.0);
        let p99 = get(sc, &["latency", "p99_ns"]).as_f64().unwrap();
        let p999 = get(sc, &["latency", "p999_ns"]).as_f64().unwrap();
        assert!(p999 >= p99);
    }

    // Bench records carry the anchor plus gated figures.
    let ops: Vec<&str> = result.bench.iter().map(|r| r.op.as_str()).collect();
    assert!(ops.contains(&"oracle_f32/step"));
    assert!(ops.contains(&"vitals/p50"));
    assert!(ops.contains(&"polyphonic/p50"));
    assert!(ops.contains(&"total/p50"));
    assert!(ops.contains(&"total/rate"));
    assert!(result.bench.iter().all(|r| r.ns_per_iter > 0.0));

    // Emission totals in the document agree with the server delta —
    // restated here so a report-rendering regression cannot hide one.
    let emissions = get(&doc, &["total", "emissions"]).as_f64().unwrap();
    let before = get(&doc, &["server", "before", "pit_serve_emissions_total"])
        .as_f64()
        .unwrap();
    let after = get(&doc, &["server", "after", "pit_serve_emissions_total"])
        .as_f64()
        .unwrap();
    assert_eq!(after - before, emissions);
}

#[test]
fn replay_is_deterministic_in_workload_and_oracle_but_not_required_in_time() {
    let zoo = build_zoo("det");
    let opts = ReplayOptions::new(zoo.manifest_path.clone(), "smoke", 1234).unwrap();
    let a = run_replay(&opts).expect("first run");
    let b = run_replay(&opts).expect("second run");
    assert!(a.ok && b.ok);
    // Population shape is exactly replayed; wall-clock latencies differ.
    for key in ["sessions", "segments", "steps", "verify_sessions"] {
        assert_eq!(
            get(&a.report, &["workload", key]).as_f64().unwrap(),
            get(&b.report, &["workload", key]).as_f64().unwrap(),
            "workload '{key}' must replay exactly"
        );
    }
    assert_eq!(
        get(&a.report, &["total", "emissions"]).as_f64().unwrap(),
        get(&b.report, &["total", "emissions"]).as_f64().unwrap(),
        "emission totals are structural, so they replay exactly"
    );
}

#[test]
fn external_daemon_mode_attaches_instead_of_booting() {
    use pit_serve::{Server, ServerConfig};
    let zoo = build_zoo("ext");
    let server = Server::bind_zoo(
        &zoo.manifest_path,
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let mut opts = ReplayOptions::new(zoo.manifest_path.clone(), "smoke", 99).unwrap();
    // Shrink further: this test only exercises the attach path.
    opts.workload.sessions = 64;
    opts.external = Some((handle.addr(), handle.metrics_addr().unwrap()));
    let result = run_replay(&opts).expect("run against external daemon");
    assert!(result.ok, "run not ok:\n{}", result.report.render());
    let stats = handle.shutdown();
    // The daemon outlived the harness and kept the books.
    assert_eq!(stats.streams_open, 0);
    assert!(stats.streams_opened >= 64);
}

#[test]
fn zoo_path_errors_are_reported_not_panicked() {
    let missing = Path::new("/nonexistent/zoo.json");
    let opts = ReplayOptions::new(missing.to_path_buf(), "smoke", 1).unwrap();
    let err = match run_replay(&opts) {
        Err(e) => e,
        Ok(_) => panic!("a missing zoo must not run"),
    };
    assert!(err.contains("zoo") || err.contains("manifest") || err.contains("read"));
}
